// Package memory implements the simulated operating-system memory manager.
//
// It models the mechanisms §III-A of the paper relies on:
//
//   - physical RAM is divided into page frames shared by the file-system
//     cache and anonymous (runtime) memory of processes;
//   - with swappiness 0 (the recommended Hadoop configuration) the cache is
//     always reclaimed before anonymous pages;
//   - anonymous pages are evicted with an approximate LRU (a clock /
//     second-chance algorithm) and written to the swap area only when
//     dirty; clean pages are dropped for free;
//   - page-out is clustered: reclaim frees a batch of pages per scan, which
//     over-evicts under pressure — the mechanism behind the superlinear
//     growth of swapped bytes in Figure 4;
//   - pages of stopped (suspended) processes lose their referenced bits,
//     so they are evicted before pages of running processes.
//
// Fault service time is charged to the faulting process: page-out of dirty
// victims and page-in of swapped pages are submitted to the swap device and
// the resulting latency is returned by Touch.
//
// # Run-based accounting
//
// The manager keeps no per-page or per-frame tables. Contiguous pages in
// the same state collapse into runs and contiguous frames with the same
// owner and referenced bit collapse into extents, so touching a 2 GB
// region, clearing the referenced bits of a suspended process, or sweeping
// the reclaim clock all cost O(state transitions) instead of O(pages).
// The semantics are bit-for-bit those of the per-page clock algorithm the
// runs replace (preserved as refManager in reference_test.go); the
// differential property test drives both through randomized scripts and
// asserts identical byte accounting.
package memory

import (
	"errors"
	"fmt"
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/sim"
)

// PID identifies a process address space. The memory manager treats it as
// an opaque key.
type PID int

// cacheOwner marks frames belonging to the file-system cache.
const cacheOwner PID = -1

// ErrOutOfMemory is returned by Touch when no frame can be reclaimed: the
// cache is empty, every anonymous page is pinned by running processes, and
// the swap area is full. The OS would invoke the OOM killer at this point.
var ErrOutOfMemory = errors.New("memory: out of memory (swap full, nothing reclaimable)")

// Config describes the physical memory of a node.
type Config struct {
	// PageSize is the reclaim granularity in bytes. Real kernels use 4KiB
	// pages but reclaim in larger batches; simulating at a coarser
	// granularity keeps frame counts manageable without changing byte
	// accounting.
	PageSize int64
	// RAMBytes is total physical memory.
	RAMBytes int64
	// ReservedBytes is pinned kernel/framework memory, never reclaimable.
	ReservedBytes int64
	// InitialCacheBytes is the starting size of the file-system cache.
	InitialCacheBytes int64
	// SwapBytes is the capacity of the swap area.
	SwapBytes int64
	// Swappiness in [0,100]. At 0 the cache is always reclaimed first, as
	// Hadoop best practice configures (§IV-A). Values above 0 let the
	// clock evict anonymous pages while cache remains, proportionally.
	Swappiness int
	// PageClusterPages is the reclaim batch size: one reclaim scan frees
	// up to this many frames and one swap write covers up to this many
	// dirty pages. Mirrors vm.page-cluster / kswapd batching.
	PageClusterPages int
	// MinorFaultCost is the CPU cost of servicing a fault that does not
	// touch the disk (zero-fill or soft fault).
	MinorFaultCost time.Duration
}

// DefaultConfig returns the 4 GB node used throughout the paper's
// evaluation: 240 MB reserved for OS + Hadoop daemons, 256 MB of initial
// cache, 8 GB of swap, swappiness 0.
func DefaultConfig() Config {
	return Config{
		PageSize:          256 << 10,
		RAMBytes:          4 << 30,
		ReservedBytes:     240 << 20,
		InitialCacheBytes: 256 << 20,
		SwapBytes:         8 << 30,
		Swappiness:        0,
		PageClusterPages:  32,
		MinorFaultCost:    2 * time.Microsecond,
	}
}

// Stats aggregates manager-wide activity.
type Stats struct {
	MinorFaults     int64
	MajorFaults     int64
	PagedOutBytes   int64
	PagedInBytes    int64
	CacheDropBytes  int64
	CacheFillBytes  int64
	ReclaimScans    int64
	OOMKills        int64
	SecondChanceHit int64 // referenced frames spared by the clock
}

// SpaceStats reports per-process paging activity, the quantity Figure 4
// plots for tl.
type SpaceStats struct {
	ResidentBytes int64
	SwappedBytes  int64
	PagedOutBytes int64
	PagedInBytes  int64
	MajorFaults   int64
	MinorFaults   int64
}

type pageState uint8

const (
	pageUntouched pageState = iota
	pageResident
	pageSwapped
)

// pageRun is a maximal interval of pages in one uniform state. Resident
// runs additionally map to a contiguous frame interval: page start+i lives
// in frame frame+fdir*i (fdir is -1 when frames were handed out from the
// free stack in descending order).
type pageRun struct {
	start int32
	n     int32
	state pageState
	dirty bool  // modified since last write to swap (resident only)
	slot  bool  // has a valid copy in swap
	frame int32 // frame of page `start` (resident only)
	fdir  int8  // frame stride per page: +1 or -1 (resident only)
}

func (r pageRun) end() int32 { return r.start + r.n }

// frameLo and frameHi bound the frame interval of a resident run as
// [frameLo, frameHi).
func (r pageRun) frameLo() int32 {
	if r.fdir >= 0 {
		return r.frame
	}
	return r.frame - (r.n - 1)
}

func (r pageRun) frameHi() int32 { return r.frameLo() + r.n }

// Space is a process address space registered with the manager.
type Space struct {
	pid      PID
	npages   int
	runs     []pageRun
	resident int
	swapped  int
	stopped  bool
	stats    SpaceStats
	pageSize int64
}

// PID returns the owning process ID.
func (s *Space) PID() PID { return s.pid }

// SizeBytes returns the address-space size.
func (s *Space) SizeBytes() int64 { return int64(s.npages) * s.pageSize }

// Stats returns a snapshot of per-space paging counters.
func (s *Space) Stats() SpaceStats {
	st := s.stats
	st.ResidentBytes = int64(s.resident) * s.pageSize
	st.SwappedBytes = int64(s.swapped) * s.pageSize
	return st
}

// extKind classifies a frame extent.
type extKind uint8

const (
	extFree extKind = iota
	extCache
	extAnon
)

// frameExt is a maximal interval of frames with uniform owner and
// referenced bit. Anonymous extents map back to pages: frame start+i holds
// page page+pdir*i of owner.
type frameExt struct {
	start int32
	n     int32
	kind  extKind
	owner PID   // anon only
	page  int32 // page held by frame `start` (anon only)
	pdir  int8  // page stride per frame: +1 or -1 (anon only)
	ref   bool  // referenced bit (anon only)
}

func (e frameExt) end() int32 { return e.start + e.n }

// pageAt returns the page held by frame f (anon extents).
func (e frameExt) pageAt(f int32) int32 {
	return e.page + int32(e.pdir)*(f-e.start)
}

// stackExt is a run of frames on a LIFO stack, recorded in push order:
// pushes were first, first+dir, ..., first+dir*(n-1); pops return them in
// reverse. It compresses the per-frame free list and cache stack of the
// per-page model without changing pop order.
type stackExt struct {
	first int32
	n     int32
	dir   int8
}

// Manager is the per-node memory manager.
type Manager struct {
	eng  *sim.Engine
	swap *disk.Device
	cfg  Config

	nframes    int
	exts       extList // sorted extents covering [0, nframes)
	freeStack  []stackExt
	freeFrames int
	cacheStack []stackExt
	cachePages int
	clockHand  int
	spaces     map[PID]*Space
	// dense is a slice fast path over spaces for small non-negative pids
	// (the OS hands them out sequentially); eviction resolves extent
	// owners through it instead of hashing.
	dense []*Space
	// spaceFree recycles Space shells across Register/Unregister so the
	// run list capacity survives process churn within a cell.
	spaceFree []*Space
	swapUsed  int64 // bytes of swap occupied by valid slots
	stats     Stats

	swapOutStream disk.StreamID
	swapInStream  disk.StreamID

	// onOOM, if set, is invoked when reclaim fails entirely. The kernel
	// layer uses it to kill a victim process.
	onOOM func()

	// swapEvents is a ring of recent swap-traffic samples used by the
	// thrashing detector (§III-A).
	swapEvents []swapEvent
	swapHead   int
}

// swapEvent is one timestamped swap transfer.
type swapEvent struct {
	at    time.Duration
	bytes int64
}

// swapEventRing bounds the thrashing detector's memory.
const swapEventRing = 512

// New creates a manager backed by the given swap device. The swap device
// may be shared with other consumers (it typically is the node's only
// disk). Managers are drawn from a recycling pool; call Release when the
// simulation cell is torn down to reuse the internal buffers.
func New(eng *sim.Engine, swap *disk.Device, cfg Config) (*Manager, error) {
	if cfg.PageSize <= 0 {
		return nil, fmt.Errorf("memory: page size %d must be positive", cfg.PageSize)
	}
	if cfg.RAMBytes <= cfg.ReservedBytes {
		return nil, fmt.Errorf("memory: RAM %d must exceed reserved %d", cfg.RAMBytes, cfg.ReservedBytes)
	}
	if cfg.Swappiness < 0 || cfg.Swappiness > 100 {
		return nil, fmt.Errorf("memory: swappiness %d out of [0,100]", cfg.Swappiness)
	}
	if cfg.PageClusterPages <= 0 {
		cfg.PageClusterPages = 1
	}
	usable := (cfg.RAMBytes - cfg.ReservedBytes) / cfg.PageSize
	if usable <= 0 {
		return nil, fmt.Errorf("memory: no usable frames")
	}
	if usable > 1<<31-1 {
		return nil, fmt.Errorf("memory: %d frames exceed the supported maximum", usable)
	}
	m := getManager()
	m.eng = eng
	m.swap = swap
	m.cfg = cfg
	m.nframes = int(usable)
	m.exts.insert(0, frameExt{start: 0, n: int32(usable), kind: extFree})
	// The free list is seeded high-to-low so frames are handed out in
	// ascending index order, like the per-page model's initial stack.
	m.freeStack = append(m.freeStack, stackExt{first: int32(usable) - 1, n: int32(usable), dir: -1})
	m.freeFrames = int(usable)
	m.swapOutStream = disk.StreamID(0x5157_4f55) // distinct stream tags for
	m.swapInStream = disk.StreamID(0x5157_494e)  // swap write and read runs
	cachePages := int(cfg.InitialCacheBytes / cfg.PageSize)
	if cachePages > m.nframes {
		cachePages = m.nframes
	}
	m.growCache(cachePages)
	return m, nil
}

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// Stats returns a snapshot of manager-wide counters.
func (m *Manager) Stats() Stats { return m.stats }

// SetOOMHandler registers fn to be called when reclaim fails entirely.
func (m *Manager) SetOOMHandler(fn func()) { m.onOOM = fn }

// FreeBytes reports unallocated physical memory (free frames).
func (m *Manager) FreeBytes() int64 { return int64(m.freeFrames) * m.cfg.PageSize }

// CacheBytes reports the current size of the file-system cache.
func (m *Manager) CacheBytes() int64 { return int64(m.cachePages) * m.cfg.PageSize }

// SwapUsedBytes reports occupied swap capacity.
func (m *Manager) SwapUsedBytes() int64 { return m.swapUsed }

// SwapFreeBytes reports remaining swap capacity.
func (m *Manager) SwapFreeBytes() int64 { return m.cfg.SwapBytes - m.swapUsed }

// Register creates an address space of the given size for pid. The memory
// is untouched: frames are allocated lazily on first access, as with mmap'd
// anonymous memory.
func (m *Manager) Register(pid PID, bytes int64) (*Space, error) {
	if _, ok := m.spaces[pid]; ok {
		return nil, fmt.Errorf("memory: pid %d already registered", pid)
	}
	if bytes < 0 {
		return nil, fmt.Errorf("memory: negative space size %d", bytes)
	}
	npages := int((bytes + m.cfg.PageSize - 1) / m.cfg.PageSize)
	if npages > 1<<31-1 {
		return nil, fmt.Errorf("memory: space of %d pages exceeds the supported maximum", npages)
	}
	var s *Space
	if n := len(m.spaceFree); n > 0 {
		s = m.spaceFree[n-1]
		m.spaceFree = m.spaceFree[:n-1]
		*s = Space{runs: s.runs[:0]}
	} else {
		s = &Space{}
	}
	s.pid = pid
	s.npages = npages
	s.pageSize = m.cfg.PageSize
	if npages > 0 {
		s.runs = append(s.runs, pageRun{start: 0, n: int32(npages), state: pageUntouched})
	}
	m.spaces[pid] = s
	if pid >= 0 && pid < denseMax {
		for int(pid) >= len(m.dense) {
			m.dense = append(m.dense, nil)
		}
		m.dense[pid] = s
	}
	return s, nil
}

// Unregister releases all frames and swap slots of pid. It is a no-op for
// unknown pids (e.g. a process that never registered memory).
func (m *Manager) Unregister(pid PID) {
	s, ok := m.spaces[pid]
	if !ok {
		return
	}
	if pid >= 0 && int(pid) < len(m.dense) {
		m.dense[pid] = nil
	}
	for _, r := range s.runs {
		if r.state == pageResident {
			m.freeFrameRange(r.frameLo(), r.frameHi())
			// The per-page model releases frames in page order; mirror
			// the resulting free-stack layout.
			m.pushFree(r.frame, r.n, r.fdir)
		}
		if r.slot {
			m.swapUsed -= int64(r.n) * m.cfg.PageSize
		}
	}
	s.runs = s.runs[:0]
	s.resident, s.swapped = 0, 0
	m.spaceFree = append(m.spaceFree, s)
	delete(m.spaces, pid)
}

// Space returns the address space of pid, or nil if not registered.
func (m *Manager) Space(pid PID) *Space { return m.space(pid) }

// denseMax bounds the dense pid fast path; larger pids fall back to the map.
const denseMax = 1 << 13

// space resolves pid without hashing when it is small and non-negative.
func (m *Manager) space(pid PID) *Space {
	if pid >= 0 && int(pid) < len(m.dense) {
		return m.dense[pid]
	}
	return m.spaces[pid]
}

// MarkStopped records that pid has been stopped (SIGTSTP/SIGSTOP). The
// referenced bits of its resident pages are cleared, making them the
// clock's preferred victims — the property §III-A highlights: "pages from
// suspended processes are evicted before those from running ones".
func (m *Manager) MarkStopped(pid PID) {
	s, ok := m.spaces[pid]
	if !ok {
		return
	}
	s.stopped = true
	for _, r := range s.runs {
		if r.state == pageResident {
			m.setRef(r.frameLo(), r.frameHi(), false)
		}
	}
}

// MarkRunning clears the stopped flag set by MarkStopped.
func (m *Manager) MarkRunning(pid PID) {
	if s, ok := m.spaces[pid]; ok {
		s.stopped = false
	}
}

// ResidentBytes reports the resident set size of pid.
func (m *Manager) ResidentBytes(pid PID) int64 {
	if s := m.space(pid); s != nil {
		return int64(s.resident) * m.cfg.PageSize
	}
	return 0
}

// SwappedBytes reports the amount of pid's memory currently in swap.
func (m *Manager) SwappedBytes(pid PID) int64 {
	if s := m.space(pid); s != nil {
		return int64(s.swapped) * m.cfg.PageSize
	}
	return 0
}

// CacheFill simulates the page cache absorbing freshly read file data. The
// cache grows into free frames only — it never reclaims anonymous memory
// for readahead (swappiness-0 behaviour); if no frames are free the data
// recycles the cache's own oldest pages, which changes nothing in our
// accounting.
func (m *Manager) CacheFill(bytes int64) {
	pages := min(int(bytes/m.cfg.PageSize), m.freeFrames)
	if pages <= 0 {
		return
	}
	m.growCache(pages)
	m.stats.CacheFillBytes += int64(pages) * m.cfg.PageSize
}

// growCache moves n free frames to the cache, preserving the pop/push
// order of the per-page model.
func (m *Manager) growCache(n int) {
	for n > 0 {
		first, dir, c := m.popFree(int32(n))
		lo, hi := chunkBounds(first, dir, c)
		m.replaceExts(lo, hi, frameExt{start: lo, n: c, kind: extCache})
		pushStack(&m.cacheStack, first, c, dir)
		m.cachePages += int(c)
		n -= int(c)
	}
}

// touchState carries the latency accounting of one Touch call.
type touchState struct {
	cpu       time.Duration
	deadline  time.Duration
	pendingIn int
}

// flushIn submits the pending clustered swap read (swap readahead).
func (m *Manager) flushIn(t *touchState, s *Space) {
	if t.pendingIn == 0 {
		return
	}
	bytes := int64(t.pendingIn) * m.cfg.PageSize
	done := m.swap.Submit(disk.Read, bytes, m.swapInStream)
	if done > t.deadline {
		t.deadline = done
	}
	m.stats.PagedInBytes += bytes
	s.stats.PagedInBytes += bytes
	m.noteSwapTraffic(bytes)
	t.pendingIn = 0
}

// finishTouch converts the accumulated costs into the latency the
// faulting process must wait for.
func (m *Manager) finishTouch(t *touchState) time.Duration {
	total := t.cpu
	if wait := t.deadline - m.eng.Now(); wait > 0 {
		total += wait
	}
	return total
}

// Touch simulates the process accessing [offset, offset+length) of its
// address space. It returns the fault-service latency the process must
// wait for (disk transfers for page-out of victims and page-in of its own
// swapped pages, plus minor-fault overhead). A write access dirties the
// pages. Touch returns ErrOutOfMemory when reclaim fails entirely.
func (m *Manager) Touch(pid PID, offset, length int64, write bool) (time.Duration, error) {
	s := m.space(pid)
	if s == nil {
		return 0, fmt.Errorf("memory: touch by unregistered pid %d", pid)
	}
	if length <= 0 {
		return 0, nil
	}
	first := offset / m.cfg.PageSize
	last := (offset + length - 1) / m.cfg.PageSize
	if first < 0 || last >= int64(s.npages) {
		return 0, fmt.Errorf("memory: pid %d touch [%d,%d) outside %d-byte space",
			pid, offset, offset+length, s.SizeBytes())
	}
	// All swap traffic generated by this access (page-out of victims,
	// page-in of our own pages) queues on one device; the process waits
	// until the last transfer completes, so the disk portion of the
	// latency is a deadline (max completion time), not a sum of
	// queue-relative waits.
	var tc touchState
	// Walk the touched range run by run. The cursor is re-resolved after
	// every piece because faulting may reclaim — possibly from this very
	// space — and reshape the run list.
	pg := int32(first)
	end := int32(last) + 1
	for pg < end {
		r := s.runs[s.runIdx(pg)]
		pieceEnd := min(r.end(), end)
		n := pieceEnd - pg
		switch r.state {
		case pageResident:
			lo := r.frame + int32(r.fdir)*(pg-r.start)
			hi := lo
			if r.fdir >= 0 {
				hi = lo + n
			} else {
				lo, hi = lo-(n-1), lo+1
			}
			m.setRef(lo, hi, true)
			if write && !r.dirty {
				if r.slot {
					// Re-dirtied pages invalidate their swap copies
					// (swap cache behaviour).
					m.swapUsed -= int64(n) * m.cfg.PageSize
				}
				nr := r
				nr.start, nr.n = pg, n
				nr.frame = r.frame + int32(r.fdir)*(pg-r.start)
				nr.dirty, nr.slot = true, false
				s.replaceRuns(pg, pieceEnd, nr)
			}
			pg = pieceEnd
		case pageUntouched:
			for pg < pieceEnd {
				c, err := m.faultChunk(s, &tc, pg, pieceEnd-pg, write, false)
				if err != nil {
					m.flushIn(&tc, s)
					return m.finishTouch(&tc), err
				}
				pg += c
			}
		case pageSwapped:
			for pg < pieceEnd {
				want := min(pieceEnd-pg, int32(m.cfg.PageClusterPages-tc.pendingIn))
				c, err := m.faultChunk(s, &tc, pg, want, write, true)
				if err != nil {
					m.flushIn(&tc, s)
					return m.finishTouch(&tc), err
				}
				pg += c
				tc.pendingIn += int(c)
				if tc.pendingIn >= m.cfg.PageClusterPages {
					m.flushIn(&tc, s)
				}
			}
		}
	}
	m.flushIn(&tc, s)
	return m.finishTouch(&tc), nil
}

// faultChunk faults up to maxPages pages of s starting at pg into freshly
// allocated frames, reclaiming first if none are free — exactly the
// per-page fault loop, batched. It returns the number of pages faulted
// (bounded by the contiguous frames available on top of the free stack).
func (m *Manager) faultChunk(s *Space, tc *touchState, pg, maxPages int32, write, fromSwap bool) (int32, error) {
	if m.freeFrames == 0 {
		deadline := m.reclaim()
		if deadline > tc.deadline {
			tc.deadline = deadline
		}
		if m.freeFrames == 0 {
			m.stats.OOMKills++
			if m.onOOM != nil {
				m.onOOM()
			}
			if m.freeFrames == 0 {
				return 0, ErrOutOfMemory
			}
		}
	}
	first, dir, c := m.popFree(maxPages)
	lo, hi := chunkBounds(first, dir, c)
	ext := frameExt{start: lo, n: c, kind: extAnon, owner: s.pid, ref: true, pdir: dir}
	if dir >= 0 {
		ext.page = pg
	} else {
		ext.page = pg + c - 1
	}
	m.replaceExts(lo, hi, ext)
	nr := pageRun{start: pg, n: c, state: pageResident, frame: first, fdir: dir, dirty: write}
	if fromSwap {
		s.swapped -= int(c)
		s.stats.MajorFaults += int64(c)
		m.stats.MajorFaults += int64(c)
		// The swap slot remains valid until the page is dirtied again
		// (swap cache behaviour); a write drops it.
		if write {
			m.swapUsed -= int64(c) * m.cfg.PageSize
		} else {
			nr.slot = true
		}
	} else {
		s.stats.MinorFaults += int64(c)
		m.stats.MinorFaults += int64(c)
	}
	s.replaceRuns(pg, pg+c, nr)
	s.resident += int(c)
	tc.cpu += time.Duration(c) * m.cfg.MinorFaultCost
	return c, nil
}

// reclaim frees up to PageClusterPages frames: first from the cache
// (swappiness 0), then by running the clock over anonymous frames. Dirty
// victims are written to swap in one clustered request; its absolute
// completion time is returned so the faulting process can wait for it.
func (m *Manager) reclaim() time.Duration {
	m.stats.ReclaimScans++
	want := m.cfg.PageClusterPages
	freed := 0

	// Phase 1: drop file-system cache. With swappiness 0 this always runs
	// first; with higher swappiness a fraction of the batch is taken from
	// anonymous memory below.
	cacheShare := want
	if m.cfg.Swappiness > 0 {
		cacheShare = want * (100 - m.cfg.Swappiness) / 100
	}
	for freed < cacheShare && m.cachePages > 0 {
		first, dir, c := popStack(&m.cacheStack, int32(cacheShare-freed))
		lo, hi := chunkBounds(first, dir, c)
		m.freeFrameRange(lo, hi)
		m.pushFree(first, c, dir)
		m.cachePages -= int(c)
		m.stats.CacheDropBytes += int64(c) * m.cfg.PageSize
		freed += int(c)
	}
	if freed >= want {
		return 0
	}

	// Phase 2: clock (second chance) over anonymous frames, extent by
	// extent. Each reclaim pass may sweep the frame space at most twice:
	// one lap to clear referenced bits, one to collect victims.
	dirtyVictims := 0
	n := m.nframes
	budget := 2 * n
	scanned := 0
	for scanned < budget && freed < want {
		hand := int32(m.clockHand)
		e := *m.exts.at(m.extIdx(hand))
		span := int(e.end() - hand)
		switch {
		case e.kind != extAnon:
			// Free and cache frames are skipped, one scan step each.
			step := min(span, budget-scanned)
			scanned += step
			m.advanceHand(step)
		case e.ref:
			step := min(span, budget-scanned)
			m.setRef(hand, hand+int32(step), false)
			m.stats.SecondChanceHit += int64(step)
			scanned += step
			m.advanceHand(step)
		default:
			adv := m.evictAt(e, hand, min(span, budget-scanned), want, &freed, &dirtyVictims)
			scanned += adv
			m.advanceHand(adv)
		}
	}

	var deadline time.Duration
	if dirtyVictims > 0 {
		bytes := int64(dirtyVictims) * m.cfg.PageSize
		deadline = m.swap.Submit(disk.Write, bytes, m.swapOutStream)
		m.noteSwapTraffic(bytes)
	}
	return deadline
}

// evictAt processes one uniform piece of an unreferenced anonymous extent
// starting at the clock hand: it evicts up to the piece/batch/budget limit
// and returns how many frames the hand advanced (evicted or skipped).
func (m *Manager) evictAt(e frameExt, hand int32, limit, want int, freed, dirtyVictims *int) int {
	pg := e.pageAt(hand)
	s := m.space(e.owner)
	if s == nil {
		// Orphaned extent (its space vanished mid-touch via the OOM
		// killer); the clock frees the frames without page bookkeeping.
		c := int32(min(limit, want-*freed))
		m.freeFrameRange(hand, hand+c)
		m.pushFree(hand, c, +1)
		*freed += int(c)
		return int(c)
	}
	r := s.runs[s.runIdx(pg)]
	// Pages of this extent are visited in frame order; with pdir -1 that
	// walks the run towards lower pages.
	var inRun int32
	if e.pdir >= 0 {
		inRun = r.end() - pg
	} else {
		inRun = pg - r.start + 1
	}
	k := min(int32(limit), inRun)
	if r.dirty {
		avail := (m.cfg.SwapBytes - m.swapUsed) / m.cfg.PageSize
		if avail <= 0 {
			// Swap full: dirty pages cannot be evicted; the clock skips
			// them and keeps looking for clean ones.
			return int(k)
		}
		if avail > int64(k) {
			avail = int64(k)
		}
		c := min(k, int32(avail), int32(want-*freed))
		m.swapUsed += int64(c) * m.cfg.PageSize
		m.stats.PagedOutBytes += int64(c) * m.cfg.PageSize
		s.stats.PagedOutBytes += int64(c) * m.cfg.PageSize
		*dirtyVictims += int(c)
		m.unmapPiece(s, e, hand, c, true)
		*freed += int(c)
		return int(c)
	}
	c := min(k, int32(want-*freed))
	m.unmapPiece(s, e, hand, c, r.slot)
	*freed += int(c)
	return int(c)
}

// unmapPiece evicts the c pages held by frames [hand, hand+c): the pages
// become swapped (slot-backed) or untouched, and the frames return to the
// free list in clock order.
func (m *Manager) unmapPiece(s *Space, e frameExt, hand, c int32, toSwap bool) {
	pLo := e.pageAt(hand)
	pHi := pLo
	if e.pdir >= 0 {
		pHi = pLo + c
	} else {
		pLo, pHi = pLo-(c-1), pLo+1
	}
	nr := pageRun{start: pLo, n: c, state: pageUntouched}
	if toSwap {
		nr.state, nr.slot = pageSwapped, true
		s.swapped += int(c)
	}
	s.replaceRuns(pLo, pHi, nr)
	s.resident -= int(c)
	m.freeFrameRange(hand, hand+c)
	m.pushFree(hand, c, +1)
}

// advanceHand moves the clock hand forward with wrap-around.
func (m *Manager) advanceHand(step int) {
	m.clockHand += step
	if m.clockHand >= m.nframes {
		m.clockHand -= m.nframes
	}
}

// noteSwapTraffic records a swap transfer for the thrashing detector.
func (m *Manager) noteSwapTraffic(bytes int64) {
	ev := swapEvent{at: m.eng.Now(), bytes: bytes}
	if len(m.swapEvents) < swapEventRing {
		m.swapEvents = append(m.swapEvents, ev)
		return
	}
	m.swapEvents[m.swapHead] = ev
	m.swapHead = (m.swapHead + 1) % swapEventRing
}

// SwapRate reports swap traffic (page-in + page-out bytes per second)
// over the trailing window.
func (m *Manager) SwapRate(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	cutoff := m.eng.Now() - window
	var total int64
	for _, ev := range m.swapEvents {
		if ev.at >= cutoff {
			total += ev.bytes
		}
	}
	return float64(total) / window.Seconds()
}

// Thrashing reports whether swap traffic over the window exceeds the
// threshold — the continuous read-and-write-to-swap condition of §III-A
// (Denning's definition). A scheduler that keeps suspending and resuming
// the same job multiplies the suspend-resume cycle cost; this predicate
// lets it notice.
func (m *Manager) Thrashing(window time.Duration, thresholdBytesPerSec float64) bool {
	return m.SwapRate(window) > thresholdBytesPerSec
}

// ---------------------------------------------------------------------------
// Free-list and cache stacks.

// pushStack pushes a run of frames (in the given stride order) onto a
// stack, extending the top extent when the push order continues it.
func pushStack(stack *[]stackExt, first, n int32, dir int8) {
	if n <= 0 {
		return
	}
	if len(*stack) > 0 {
		t := &(*stack)[len(*stack)-1]
		dirs := [2]int8{t.dir, t.dir}
		if t.n == 1 {
			dirs = [2]int8{1, -1}
		}
		for _, d := range dirs {
			if first != t.first+int32(d)*t.n {
				continue
			}
			if n > 1 && dir != d {
				continue
			}
			t.dir = d
			t.n += n
			return
		}
	}
	*stack = append(*stack, stackExt{first: first, n: n, dir: dir})
}

// popStack pops up to maxN frames off the top extent. It returns the first
// popped frame, the stride of subsequent pops, and the count.
func popStack(stack *[]stackExt, maxN int32) (first int32, dir int8, n int32) {
	t := &(*stack)[len(*stack)-1]
	n = min(maxN, t.n)
	if t.dir >= 0 {
		first, dir = t.first+t.n-1, -1
	} else {
		first, dir = t.first-(t.n-1), +1
	}
	t.n -= n
	if t.n == 0 {
		*stack = (*stack)[:len(*stack)-1]
	}
	return first, dir, n
}

// pushFree returns frames to the free list in the given push order.
func (m *Manager) pushFree(first, n int32, dir int8) {
	pushStack(&m.freeStack, first, n, dir)
	m.freeFrames += int(n)
}

// popFree takes up to maxN frames from the free list. Caller must know
// frames are free.
func (m *Manager) popFree(maxN int32) (first int32, dir int8, n int32) {
	first, dir, n = popStack(&m.freeStack, maxN)
	m.freeFrames -= int(n)
	return first, dir, n
}

// chunkBounds converts a (first, stride, count) frame walk to its covered
// interval [lo, hi).
func chunkBounds(first int32, dir int8, n int32) (lo, hi int32) {
	if dir >= 0 {
		return first, first + n
	}
	return first - (n - 1), first + 1
}

// ---------------------------------------------------------------------------
// Frame-extent list surgery.

// extIdx returns the index of the extent containing frame f.
func (m *Manager) extIdx(f int32) int { return m.exts.search(f) }

// splitExtAt ensures an extent boundary exists at frame `at`, given the
// index i of the extent containing it. It returns the index of the extent
// that now starts at `at`.
func (m *Manager) splitExtAt(i int, at int32) int {
	e := m.exts.at(i)
	if e.start == at {
		return i
	}
	right := *e
	right.start = at
	right.n = e.end() - at
	if e.kind == extAnon {
		right.page = e.pageAt(at)
	}
	e.n = at - e.start
	m.exts.insert(i+1, right)
	return i + 1
}

// mergeExts tries to merge compatible adjacent extents and returns the
// merged extent and direction choice.
func canMergeExts(a, b frameExt) (int8, bool) {
	if a.kind != b.kind {
		return 0, false
	}
	if a.kind != extAnon {
		return 0, true
	}
	if a.owner != b.owner || a.ref != b.ref {
		return 0, false
	}
	for _, d := range [2]int8{1, -1} {
		if a.n > 1 && a.pdir != d {
			continue
		}
		if b.n > 1 && b.pdir != d {
			continue
		}
		if b.page == a.page+int32(d)*a.n {
			return d, true
		}
	}
	return 0, false
}

// coalesceExts merges mergeable neighbours in the bounded index window
// [from-1, to+1]; callers pass the indices their edit touched.
func (m *Manager) coalesceExts(from, to int) {
	i := max(from-1, 0)
	for i < m.exts.len()-1 && i <= to {
		d, ok := canMergeExts(*m.exts.at(i), *m.exts.at(i + 1))
		if !ok {
			i++
			continue
		}
		a := m.exts.at(i)
		a.n += m.exts.at(i + 1).n
		if a.kind == extAnon {
			a.pdir = d
		}
		m.exts.delete(i + 1)
		to--
	}
}

// replaceExts overwrites the extent coverage of [lo, hi) with ne.
func (m *Manager) replaceExts(lo, hi int32, ne frameExt) {
	i := m.splitExtAt(m.extIdx(lo), lo)
	j := i
	for j < m.exts.len() && m.exts.at(j).start < hi {
		j++
	}
	if m.exts.at(j-1).end() > hi {
		m.splitExtAt(j-1, hi)
	}
	*m.exts.at(i) = ne
	for j > i+1 {
		j--
		m.exts.delete(j)
	}
	m.coalesceExts(i, i)
}

// freeFrameRange converts frames [lo, hi) to free extents (the free-stack
// entry is pushed separately by the caller, preserving push order).
func (m *Manager) freeFrameRange(lo, hi int32) {
	m.replaceExts(lo, hi, frameExt{start: lo, n: hi - lo, kind: extFree})
}

// setRef sets the referenced bit of the anonymous frames in [lo, hi).
func (m *Manager) setRef(lo, hi int32, ref bool) {
	// Fast path for the dominant access pattern (re-touching a hot,
	// already-referenced region): when every extent in range carries the
	// bit already there is nothing to split or merge.
	i := m.extIdx(lo)
	j := i
	for ; j < m.exts.len() && m.exts.at(j).start < hi; j++ {
		if m.exts.at(j).ref != ref {
			break
		}
	}
	if j >= m.exts.len() || m.exts.at(j).start >= hi {
		return
	}
	i = m.splitExtAt(i, lo)
	from := i
	for i < m.exts.len() && m.exts.at(i).start < hi {
		if m.exts.at(i).end() > hi {
			m.splitExtAt(i, hi)
		}
		m.exts.at(i).ref = ref
		i++
	}
	m.coalesceExts(from, i-1)
}

// ---------------------------------------------------------------------------
// Page-run list surgery.

// runIdx returns the index of the run containing pg.
func (s *Space) runIdx(pg int32) int {
	lo, hi := 0, len(s.runs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.runs[mid].start <= pg {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// splitRunAt ensures a run boundary exists at page `at`, given the index
// i of the run containing it. It returns the index of the run that now
// starts at `at`.
func (s *Space) splitRunAt(i int, at int32) int {
	r := s.runs[i]
	if r.start == at {
		return i
	}
	right := r
	right.start = at
	right.n = r.end() - at
	if r.state == pageResident {
		right.frame = r.frame + int32(r.fdir)*(at-r.start)
	}
	s.runs[i].n = at - r.start
	s.runs = append(s.runs, pageRun{})
	copy(s.runs[i+2:], s.runs[i+1:])
	s.runs[i+1] = right
	return i + 1
}

// canMergeRuns reports whether two adjacent runs are one uniform state.
func canMergeRuns(a, b pageRun) (int8, bool) {
	if a.state != b.state {
		return 0, false
	}
	if a.state != pageResident {
		return 0, true
	}
	if a.dirty != b.dirty || a.slot != b.slot {
		return 0, false
	}
	for _, d := range [2]int8{1, -1} {
		if a.n > 1 && a.fdir != d {
			continue
		}
		if b.n > 1 && b.fdir != d {
			continue
		}
		if b.frame == a.frame+int32(d)*a.n {
			return d, true
		}
	}
	return 0, false
}

// coalesceRuns merges mergeable neighbours in the bounded index window
// [from-1, to+1].
func (s *Space) coalesceRuns(from, to int) {
	i := max(from-1, 0)
	for i < len(s.runs)-1 && i <= to {
		d, ok := canMergeRuns(s.runs[i], s.runs[i+1])
		if !ok {
			i++
			continue
		}
		s.runs[i].n += s.runs[i+1].n
		if s.runs[i].state == pageResident {
			s.runs[i].fdir = d
		}
		s.runs = append(s.runs[:i+1], s.runs[i+2:]...)
		to--
	}
}

// replaceRuns overwrites the run coverage of pages [lo, hi) with nr.
func (s *Space) replaceRuns(lo, hi int32, nr pageRun) {
	i := s.splitRunAt(s.runIdx(lo), lo)
	j := i
	for j < len(s.runs) && s.runs[j].start < hi {
		j++
	}
	if last := s.runs[j-1]; last.end() > hi {
		s.splitRunAt(j-1, hi)
	}
	s.runs[i] = nr
	if j > i+1 {
		s.runs = append(s.runs[:i+1], s.runs[j:]...)
	}
	s.coalesceRuns(i, i)
}

// ---------------------------------------------------------------------------
// Invariant checking (used by tests).

// checkInvariants validates internal consistency; used by tests.
func (m *Manager) checkInvariants() error {
	// Frame extents: sorted, non-empty, exactly covering [0, nframes).
	var next int32
	counts := map[extKind]int{}
	for i := 0; i < m.exts.len(); i++ {
		e := *m.exts.at(i)
		if e.n <= 0 {
			return fmt.Errorf("extent %d empty", i)
		}
		if e.start != next {
			return fmt.Errorf("extent %d starts at %d, want %d (gap or overlap)", i, e.start, next)
		}
		next = e.end()
		counts[e.kind] += int(e.n)
		if e.kind == extAnon {
			if _, ok := m.spaces[e.owner]; !ok && e.owner != cacheOwner {
				// Orphaned extents can only exist transiently while an
				// OOM-killed toucher finishes its fault; tests never
				// observe that state.
				return fmt.Errorf("extent %d owned by unregistered pid %d", i, e.owner)
			}
		}
	}
	if next != int32(m.nframes) {
		return fmt.Errorf("extents cover %d frames, want %d", next, m.nframes)
	}
	if counts[extFree] != m.freeFrames {
		return fmt.Errorf("free accounting: %d extent frames vs %d counter", counts[extFree], m.freeFrames)
	}
	if counts[extCache] != m.cachePages {
		return fmt.Errorf("cache accounting: %d extent frames vs %d counter", counts[extCache], m.cachePages)
	}
	if counts[extFree]+counts[extCache]+counts[extAnon] != m.nframes {
		return fmt.Errorf("frame conservation violated")
	}
	// Stacks: each stack's frames must be exactly the free/cache extents.
	for _, chk := range []struct {
		name  string
		stack []stackExt
		kind  extKind
		total int
	}{
		{"free", m.freeStack, extFree, m.freeFrames},
		{"cache", m.cacheStack, extCache, m.cachePages},
	} {
		seen := make(map[int32]bool, chk.total)
		n := 0
		for _, se := range chk.stack {
			for k := int32(0); k < se.n; k++ {
				f := se.first + int32(se.dir)*k
				if se.n == 1 {
					f = se.first
				}
				if seen[f] {
					return fmt.Errorf("%s stack lists frame %d twice", chk.name, f)
				}
				seen[f] = true
				if e := m.exts.at(m.extIdx(f)); e.kind != chk.kind {
					return fmt.Errorf("%s stack frame %d has extent kind %d", chk.name, f, e.kind)
				}
				n++
			}
		}
		if n != chk.total {
			return fmt.Errorf("%s stack holds %d frames, want %d", chk.name, n, chk.total)
		}
	}
	// Spaces: run coverage, counters, and the frame mapping round trip.
	var slotBytes int64
	for pid, s := range m.spaces {
		var nextPg int32
		resident, swapped := 0, 0
		for i, r := range s.runs {
			if r.n <= 0 {
				return fmt.Errorf("pid %d run %d empty", pid, i)
			}
			if r.start != nextPg {
				return fmt.Errorf("pid %d run %d starts at %d, want %d", pid, i, r.start, nextPg)
			}
			nextPg = r.end()
			switch r.state {
			case pageResident:
				resident += int(r.n)
				if r.slot {
					slotBytes += int64(r.n) * m.cfg.PageSize
				}
				for k := int32(0); k < r.n; k++ {
					f := r.frame + int32(r.fdir)*k
					if r.n == 1 {
						f = r.frame
					}
					e := m.exts.at(m.extIdx(f))
					if e.kind != extAnon || e.owner != pid {
						return fmt.Errorf("pid %d page %d frame %d not an anon frame of the pid", pid, r.start+k, f)
					}
					if got := e.pageAt(f); got != r.start+k {
						return fmt.Errorf("frame %d maps page %d, run says %d", f, got, r.start+k)
					}
				}
			case pageSwapped:
				swapped += int(r.n)
				if !r.slot {
					return fmt.Errorf("pid %d pages [%d,%d) swapped without slot", pid, r.start, r.end())
				}
				slotBytes += int64(r.n) * m.cfg.PageSize
			case pageUntouched:
				if r.slot {
					return fmt.Errorf("pid %d pages [%d,%d) untouched with slot", pid, r.start, r.end())
				}
			}
		}
		if int(nextPg) != s.npages {
			return fmt.Errorf("pid %d runs cover %d pages, want %d", pid, nextPg, s.npages)
		}
		if resident != s.resident || swapped != s.swapped {
			return fmt.Errorf("pid %d counters resident=%d/%d swapped=%d/%d",
				pid, s.resident, resident, s.swapped, swapped)
		}
	}
	if slotBytes != m.swapUsed {
		return fmt.Errorf("swap accounting: %d slot bytes vs %d counter", slotBytes, m.swapUsed)
	}
	return nil
}

// Package memory implements the simulated operating-system memory manager.
//
// It models the mechanisms §III-A of the paper relies on:
//
//   - physical RAM is divided into page frames shared by the file-system
//     cache and anonymous (runtime) memory of processes;
//   - with swappiness 0 (the recommended Hadoop configuration) the cache is
//     always reclaimed before anonymous pages;
//   - anonymous pages are evicted with an approximate LRU (a clock /
//     second-chance algorithm) and written to the swap area only when
//     dirty; clean pages are dropped for free;
//   - page-out is clustered: reclaim frees a batch of pages per scan, which
//     over-evicts under pressure — the mechanism behind the superlinear
//     growth of swapped bytes in Figure 4;
//   - pages of stopped (suspended) processes lose their referenced bits,
//     so they are evicted before pages of running processes.
//
// Fault service time is charged to the faulting process: page-out of dirty
// victims and page-in of swapped pages are submitted to the swap device and
// the resulting latency is returned by Touch.
package memory

import (
	"errors"
	"fmt"
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/sim"
)

// PID identifies a process address space. The memory manager treats it as
// an opaque key.
type PID int

// cacheOwner marks frames belonging to the file-system cache.
const cacheOwner PID = -1

// ErrOutOfMemory is returned by Touch when no frame can be reclaimed: the
// cache is empty, every anonymous page is pinned by running processes, and
// the swap area is full. The OS would invoke the OOM killer at this point.
var ErrOutOfMemory = errors.New("memory: out of memory (swap full, nothing reclaimable)")

// Config describes the physical memory of a node.
type Config struct {
	// PageSize is the reclaim granularity in bytes. Real kernels use 4KiB
	// pages but reclaim in larger batches; simulating at a coarser
	// granularity keeps frame counts manageable without changing byte
	// accounting.
	PageSize int64
	// RAMBytes is total physical memory.
	RAMBytes int64
	// ReservedBytes is pinned kernel/framework memory, never reclaimable.
	ReservedBytes int64
	// InitialCacheBytes is the starting size of the file-system cache.
	InitialCacheBytes int64
	// SwapBytes is the capacity of the swap area.
	SwapBytes int64
	// Swappiness in [0,100]. At 0 the cache is always reclaimed first, as
	// Hadoop best practice configures (§IV-A). Values above 0 let the
	// clock evict anonymous pages while cache remains, proportionally.
	Swappiness int
	// PageClusterPages is the reclaim batch size: one reclaim scan frees
	// up to this many frames and one swap write covers up to this many
	// dirty pages. Mirrors vm.page-cluster / kswapd batching.
	PageClusterPages int
	// MinorFaultCost is the CPU cost of servicing a fault that does not
	// touch the disk (zero-fill or soft fault).
	MinorFaultCost time.Duration
}

// DefaultConfig returns the 4 GB node used throughout the paper's
// evaluation: 240 MB reserved for OS + Hadoop daemons, 256 MB of initial
// cache, 8 GB of swap, swappiness 0.
func DefaultConfig() Config {
	return Config{
		PageSize:          256 << 10,
		RAMBytes:          4 << 30,
		ReservedBytes:     240 << 20,
		InitialCacheBytes: 256 << 20,
		SwapBytes:         8 << 30,
		Swappiness:        0,
		PageClusterPages:  32,
		MinorFaultCost:    2 * time.Microsecond,
	}
}

// Stats aggregates manager-wide activity.
type Stats struct {
	MinorFaults     int64
	MajorFaults     int64
	PagedOutBytes   int64
	PagedInBytes    int64
	CacheDropBytes  int64
	CacheFillBytes  int64
	ReclaimScans    int64
	OOMKills        int64
	SecondChanceHit int64 // referenced frames spared by the clock
}

// SpaceStats reports per-process paging activity, the quantity Figure 4
// plots for tl.
type SpaceStats struct {
	ResidentBytes int64
	SwappedBytes  int64
	PagedOutBytes int64
	PagedInBytes  int64
	MajorFaults   int64
	MinorFaults   int64
}

type pageState uint8

const (
	pageUntouched pageState = iota
	pageResident
	pageSwapped
)

type page struct {
	state pageState
	frame int32 // valid when resident
	dirty bool  // modified since last write to swap
	slot  bool  // has a valid copy in swap
}

// Space is a process address space registered with the manager.
type Space struct {
	pid      PID
	npages   int
	pages    []page
	resident int
	swapped  int
	stopped  bool
	stats    SpaceStats
	pageSize int64
}

// PID returns the owning process ID.
func (s *Space) PID() PID { return s.pid }

// SizeBytes returns the address-space size.
func (s *Space) SizeBytes() int64 { return int64(s.npages) * s.pageSize }

// Stats returns a snapshot of per-space paging counters.
func (s *Space) Stats() SpaceStats {
	st := s.stats
	st.ResidentBytes = int64(s.resident) * s.pageSize
	st.SwappedBytes = int64(s.swapped) * s.pageSize
	return st
}

type frame struct {
	owner      PID
	page       int32
	referenced bool
	inUse      bool
}

// Manager is the per-node memory manager.
type Manager struct {
	eng  *sim.Engine
	swap *disk.Device
	cfg  Config

	frames      []frame
	free        []int32
	spaces      map[PID]*Space
	clockHand   int
	cacheFrames []int32 // frames currently holding cache pages
	swapUsed    int64   // bytes of swap occupied by valid slots
	stats       Stats

	swapOutStream disk.StreamID
	swapInStream  disk.StreamID

	// onOOM, if set, is invoked when reclaim fails entirely. The kernel
	// layer uses it to kill a victim process.
	onOOM func()

	// swapEvents is a ring of recent swap-traffic samples used by the
	// thrashing detector (§III-A).
	swapEvents []swapEvent
	swapHead   int
}

// swapEvent is one timestamped swap transfer.
type swapEvent struct {
	at    time.Duration
	bytes int64
}

// swapEventRing bounds the thrashing detector's memory.
const swapEventRing = 512

// New creates a manager backed by the given swap device. The swap device
// may be shared with other consumers (it typically is the node's only
// disk).
func New(eng *sim.Engine, swap *disk.Device, cfg Config) (*Manager, error) {
	if cfg.PageSize <= 0 {
		return nil, fmt.Errorf("memory: page size %d must be positive", cfg.PageSize)
	}
	if cfg.RAMBytes <= cfg.ReservedBytes {
		return nil, fmt.Errorf("memory: RAM %d must exceed reserved %d", cfg.RAMBytes, cfg.ReservedBytes)
	}
	if cfg.Swappiness < 0 || cfg.Swappiness > 100 {
		return nil, fmt.Errorf("memory: swappiness %d out of [0,100]", cfg.Swappiness)
	}
	if cfg.PageClusterPages <= 0 {
		cfg.PageClusterPages = 1
	}
	usable := (cfg.RAMBytes - cfg.ReservedBytes) / cfg.PageSize
	if usable <= 0 {
		return nil, fmt.Errorf("memory: no usable frames")
	}
	m := &Manager{
		eng:           eng,
		swap:          swap,
		cfg:           cfg,
		frames:        make([]frame, usable),
		free:          make([]int32, 0, usable),
		spaces:        make(map[PID]*Space),
		swapOutStream: disk.StreamID(0x5157_4f55), // distinct stream tags for
		swapInStream:  disk.StreamID(0x5157_494e), // swap write and read runs
	}
	for i := int32(int(usable) - 1); i >= 0; i-- {
		m.free = append(m.free, i)
	}
	cachePages := int(cfg.InitialCacheBytes / cfg.PageSize)
	if cachePages > len(m.frames) {
		cachePages = len(m.frames)
	}
	for i := 0; i < cachePages; i++ {
		m.cacheFrames = append(m.cacheFrames, m.takeFreeFrameFor(cacheOwner, int32(i)))
	}
	return m, nil
}

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// Stats returns a snapshot of manager-wide counters.
func (m *Manager) Stats() Stats { return m.stats }

// SetOOMHandler registers fn to be called when reclaim fails entirely.
func (m *Manager) SetOOMHandler(fn func()) { m.onOOM = fn }

// FreeBytes reports unallocated physical memory (free frames).
func (m *Manager) FreeBytes() int64 { return int64(len(m.free)) * m.cfg.PageSize }

// CacheBytes reports the current size of the file-system cache.
func (m *Manager) CacheBytes() int64 { return int64(len(m.cacheFrames)) * m.cfg.PageSize }

// SwapUsedBytes reports occupied swap capacity.
func (m *Manager) SwapUsedBytes() int64 { return m.swapUsed }

// SwapFreeBytes reports remaining swap capacity.
func (m *Manager) SwapFreeBytes() int64 { return m.cfg.SwapBytes - m.swapUsed }

// Register creates an address space of the given size for pid. The memory
// is untouched: frames are allocated lazily on first access, as with mmap'd
// anonymous memory.
func (m *Manager) Register(pid PID, bytes int64) (*Space, error) {
	if _, ok := m.spaces[pid]; ok {
		return nil, fmt.Errorf("memory: pid %d already registered", pid)
	}
	if bytes < 0 {
		return nil, fmt.Errorf("memory: negative space size %d", bytes)
	}
	npages := int((bytes + m.cfg.PageSize - 1) / m.cfg.PageSize)
	s := &Space{
		pid:      pid,
		npages:   npages,
		pages:    make([]page, npages),
		pageSize: m.cfg.PageSize,
	}
	m.spaces[pid] = s
	return s, nil
}

// Unregister releases all frames and swap slots of pid. It is a no-op for
// unknown pids (e.g. a process that never registered memory).
func (m *Manager) Unregister(pid PID) {
	s, ok := m.spaces[pid]
	if !ok {
		return
	}
	for i := range s.pages {
		p := &s.pages[i]
		if p.state == pageResident {
			m.releaseFrame(p.frame)
		}
		if p.slot {
			m.swapUsed -= m.cfg.PageSize
			p.slot = false
		}
		p.state = pageUntouched
	}
	delete(m.spaces, pid)
}

// Space returns the address space of pid, or nil if not registered.
func (m *Manager) Space(pid PID) *Space { return m.spaces[pid] }

// MarkStopped records that pid has been stopped (SIGTSTP/SIGSTOP). The
// referenced bits of its resident pages are cleared, making them the
// clock's preferred victims — the property §III-A highlights: "pages from
// suspended processes are evicted before those from running ones".
func (m *Manager) MarkStopped(pid PID) {
	s, ok := m.spaces[pid]
	if !ok {
		return
	}
	s.stopped = true
	for i := range s.pages {
		p := &s.pages[i]
		if p.state == pageResident {
			m.frames[p.frame].referenced = false
		}
	}
}

// MarkRunning clears the stopped flag set by MarkStopped.
func (m *Manager) MarkRunning(pid PID) {
	if s, ok := m.spaces[pid]; ok {
		s.stopped = false
	}
}

// ResidentBytes reports the resident set size of pid.
func (m *Manager) ResidentBytes(pid PID) int64 {
	if s, ok := m.spaces[pid]; ok {
		return int64(s.resident) * m.cfg.PageSize
	}
	return 0
}

// SwappedBytes reports the amount of pid's memory currently in swap.
func (m *Manager) SwappedBytes(pid PID) int64 {
	if s, ok := m.spaces[pid]; ok {
		return int64(s.swapped) * m.cfg.PageSize
	}
	return 0
}

// CacheFill simulates the page cache absorbing freshly read file data. The
// cache grows into free frames only — it never reclaims anonymous memory
// for readahead (swappiness-0 behaviour); if no frames are free the data
// recycles the cache's own oldest pages, which changes nothing in our
// accounting.
func (m *Manager) CacheFill(bytes int64) {
	pages := int(bytes / m.cfg.PageSize)
	for i := 0; i < pages && len(m.free) > 0; i++ {
		m.cacheFrames = append(m.cacheFrames, m.takeFreeFrameFor(cacheOwner, 0))
		m.stats.CacheFillBytes += m.cfg.PageSize
	}
}

// Touch simulates the process accessing [offset, offset+length) of its
// address space. It returns the fault-service latency the process must
// wait for (disk transfers for page-out of victims and page-in of its own
// swapped pages, plus minor-fault overhead). A write access dirties the
// pages. Touch returns ErrOutOfMemory when reclaim fails entirely.
func (m *Manager) Touch(pid PID, offset, length int64, write bool) (time.Duration, error) {
	s, ok := m.spaces[pid]
	if !ok {
		return 0, fmt.Errorf("memory: touch by unregistered pid %d", pid)
	}
	if length <= 0 {
		return 0, nil
	}
	first := int(offset / m.cfg.PageSize)
	last := int((offset + length - 1) / m.cfg.PageSize)
	if first < 0 || last >= s.npages {
		return 0, fmt.Errorf("memory: pid %d touch [%d,%d) outside %d-byte space",
			pid, offset, offset+length, s.SizeBytes())
	}
	// All swap traffic generated by this access (page-out of victims,
	// page-in of our own pages) queues on one device; the process waits
	// until the last transfer completes, so the disk portion of the
	// latency is a deadline (max completion time), not a sum of
	// queue-relative waits.
	var cpuCost time.Duration
	var diskDeadline time.Duration
	// pendingIn batches contiguous page-ins into clustered swap reads
	// (swap readahead).
	pendingIn := 0
	flushIn := func() {
		if pendingIn == 0 {
			return
		}
		bytes := int64(pendingIn) * m.cfg.PageSize
		done := m.swap.Submit(disk.Read, bytes, m.swapInStream)
		if done > diskDeadline {
			diskDeadline = done
		}
		m.stats.PagedInBytes += bytes
		s.stats.PagedInBytes += bytes
		m.noteSwapTraffic(bytes)
		pendingIn = 0
	}
	finish := func() time.Duration {
		total := cpuCost
		if wait := diskDeadline - m.eng.Now(); wait > 0 {
			total += wait
		}
		return total
	}
	for i := first; i <= last; i++ {
		p := &s.pages[i]
		switch p.state {
		case pageResident:
			m.frames[p.frame].referenced = true
			if write && !p.dirty {
				p.dirty = true
				m.dropSwapSlot(p)
			}
		case pageUntouched:
			cpu, deadline, err := m.faultIn(s, i, write, false)
			cpuCost += cpu
			if deadline > diskDeadline {
				diskDeadline = deadline
			}
			if err != nil {
				flushIn()
				return finish(), err
			}
		case pageSwapped:
			cpu, deadline, err := m.faultIn(s, i, write, true)
			cpuCost += cpu
			if deadline > diskDeadline {
				diskDeadline = deadline
			}
			if err != nil {
				flushIn()
				return finish(), err
			}
			pendingIn++
			if pendingIn >= m.cfg.PageClusterPages {
				flushIn()
			}
		}
	}
	flushIn()
	return finish(), nil
}

// faultIn allocates a frame for page i of s. For swapped pages the disk
// read is accounted by the caller's batching; this function only moves the
// bookkeeping and charges reclaim costs. It returns the CPU cost and the
// absolute completion deadline of any reclaim write it triggered.
func (m *Manager) faultIn(s *Space, i int, write, fromSwap bool) (time.Duration, time.Duration, error) {
	deadline, frameIdx, err := m.allocFrame()
	if err != nil {
		return 0, deadline, err
	}
	f := &m.frames[frameIdx]
	f.owner = s.pid
	f.page = int32(i)
	f.referenced = true
	f.inUse = true
	p := &s.pages[i]
	p.state = pageResident
	p.frame = frameIdx
	s.resident++
	if fromSwap {
		s.swapped--
		s.stats.MajorFaults++
		m.stats.MajorFaults++
		// The swap slot remains valid until the page is dirtied again
		// (swap cache behaviour).
		p.dirty = false
		if write {
			p.dirty = true
			m.dropSwapSlot(p)
		}
	} else {
		s.stats.MinorFaults++
		m.stats.MinorFaults++
		p.dirty = write
	}
	return m.cfg.MinorFaultCost, deadline, nil
}

// dropSwapSlot invalidates the swap copy of a page that has been
// re-dirtied, freeing its slot.
func (m *Manager) dropSwapSlot(p *page) {
	if p.slot {
		p.slot = false
		m.swapUsed -= m.cfg.PageSize
	}
}

// takeFreeFrameFor pops a free frame and assigns it. Caller must know a
// frame is free.
func (m *Manager) takeFreeFrameFor(owner PID, pg int32) int32 {
	idx := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.frames[idx] = frame{owner: owner, page: pg, inUse: true}
	return idx
}

// releaseFrame returns a frame to the free list.
func (m *Manager) releaseFrame(idx int32) {
	m.frames[idx] = frame{}
	m.free = append(m.free, idx)
}

// allocFrame returns a free frame, reclaiming if necessary. The returned
// deadline is the absolute completion time of any swap write the reclaim
// queued; the faulting process must wait for it (direct reclaim).
func (m *Manager) allocFrame() (time.Duration, int32, error) {
	if len(m.free) == 0 {
		deadline := m.reclaim()
		if len(m.free) == 0 {
			m.stats.OOMKills++
			if m.onOOM != nil {
				m.onOOM()
			}
			if len(m.free) == 0 {
				return deadline, 0, ErrOutOfMemory
			}
		}
		idx := m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
		return deadline, idx, nil
	}
	idx := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	return 0, idx, nil
}

// reclaim frees up to PageClusterPages frames: first from the cache
// (swappiness 0), then by running the clock over anonymous frames. Dirty
// victims are written to swap in one clustered request; its absolute
// completion time is returned so the faulting process can wait for it.
func (m *Manager) reclaim() time.Duration {
	m.stats.ReclaimScans++
	want := m.cfg.PageClusterPages
	freed := 0

	// Phase 1: drop file-system cache. With swappiness 0 this always runs
	// first; with higher swappiness a fraction of the batch is taken from
	// anonymous memory below.
	cacheShare := want
	if m.cfg.Swappiness > 0 {
		cacheShare = want * (100 - m.cfg.Swappiness) / 100
	}
	for freed < cacheShare && len(m.cacheFrames) > 0 {
		m.dropOneCachePage()
		freed++
	}
	if freed >= want {
		return 0
	}

	// Phase 2: clock (second chance) over anonymous frames.
	dirtyVictims := 0
	n := len(m.frames)
	// Each reclaim pass may sweep the table at most twice: one pass to
	// clear referenced bits, one to collect victims.
	for scanned := 0; scanned < 2*n && freed < want; scanned++ {
		f := &m.frames[m.clockHand]
		hand := m.clockHand
		m.clockHand = (m.clockHand + 1) % n
		if !f.inUse || f.owner == cacheOwner {
			continue
		}
		if f.referenced {
			f.referenced = false
			m.stats.SecondChanceHit++
			continue
		}
		s := m.spaces[f.owner]
		if s == nil {
			// Orphaned frame; cannot happen, but be safe.
			m.releaseFrame(int32(hand))
			freed++
			continue
		}
		p := &s.pages[f.page]
		if p.dirty {
			if m.swapUsed+m.cfg.PageSize > m.cfg.SwapBytes {
				// Swap full: cannot evict dirty pages; keep looking for
				// clean ones.
				continue
			}
			p.slot = true
			p.dirty = false
			m.swapUsed += m.cfg.PageSize
			dirtyVictims++
			m.stats.PagedOutBytes += m.cfg.PageSize
			s.stats.PagedOutBytes += m.cfg.PageSize
		}
		// Clean pages: if they have a swap slot the copy is still valid;
		// if they never had one they are zero/unwritten and can be
		// dropped. Either way the frame is free.
		if p.slot {
			p.state = pageSwapped
			s.swapped++
		} else {
			p.state = pageUntouched
		}
		s.resident--
		m.releaseFrame(p.frame)
		freed++
	}

	var deadline time.Duration
	if dirtyVictims > 0 {
		bytes := int64(dirtyVictims) * m.cfg.PageSize
		deadline = m.swap.Submit(disk.Write, bytes, m.swapOutStream)
		m.noteSwapTraffic(bytes)
	}
	return deadline
}

// noteSwapTraffic records a swap transfer for the thrashing detector.
func (m *Manager) noteSwapTraffic(bytes int64) {
	ev := swapEvent{at: m.eng.Now(), bytes: bytes}
	if len(m.swapEvents) < swapEventRing {
		m.swapEvents = append(m.swapEvents, ev)
		return
	}
	m.swapEvents[m.swapHead] = ev
	m.swapHead = (m.swapHead + 1) % swapEventRing
}

// SwapRate reports swap traffic (page-in + page-out bytes per second)
// over the trailing window.
func (m *Manager) SwapRate(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	cutoff := m.eng.Now() - window
	var total int64
	for _, ev := range m.swapEvents {
		if ev.at >= cutoff {
			total += ev.bytes
		}
	}
	return float64(total) / window.Seconds()
}

// Thrashing reports whether swap traffic over the window exceeds the
// threshold — the continuous read-and-write-to-swap condition of §III-A
// (Denning's definition). A scheduler that keeps suspending and resuming
// the same job multiplies the suspend-resume cycle cost; this predicate
// lets it notice.
func (m *Manager) Thrashing(window time.Duration, thresholdBytesPerSec float64) bool {
	return m.SwapRate(window) > thresholdBytesPerSec
}

// dropOneCachePage releases one cache frame (clean, free to drop). The
// caller must ensure the cache is non-empty.
func (m *Manager) dropOneCachePage() {
	idx := m.cacheFrames[len(m.cacheFrames)-1]
	m.cacheFrames = m.cacheFrames[:len(m.cacheFrames)-1]
	m.releaseFrame(idx)
	m.stats.CacheDropBytes += m.cfg.PageSize
}

// checkInvariants validates internal consistency; used by tests.
func (m *Manager) checkInvariants() error {
	used := 0
	perOwner := make(map[PID]int)
	for i := range m.frames {
		f := &m.frames[i]
		if !f.inUse {
			continue
		}
		used++
		perOwner[f.owner]++
		if f.owner == cacheOwner {
			continue
		}
		s, ok := m.spaces[f.owner]
		if !ok {
			return fmt.Errorf("frame %d owned by unregistered pid %d", i, f.owner)
		}
		if int(f.page) >= s.npages {
			return fmt.Errorf("frame %d maps page %d beyond space of pid %d", i, f.page, f.owner)
		}
		p := s.pages[f.page]
		if p.state != pageResident || p.frame != int32(i) {
			return fmt.Errorf("frame %d / pid %d page %d mapping mismatch", i, f.owner, f.page)
		}
	}
	if used+len(m.free) != len(m.frames) {
		return fmt.Errorf("frame conservation violated: %d used + %d free != %d total",
			used, len(m.free), len(m.frames))
	}
	if perOwner[cacheOwner] != len(m.cacheFrames) {
		return fmt.Errorf("cache accounting: %d frames vs %d tracked", perOwner[cacheOwner], len(m.cacheFrames))
	}
	var slotBytes int64
	for pid, s := range m.spaces {
		resident, swapped := 0, 0
		for i := range s.pages {
			switch s.pages[i].state {
			case pageResident:
				resident++
			case pageSwapped:
				swapped++
				if !s.pages[i].slot {
					return fmt.Errorf("pid %d page %d swapped without slot", pid, i)
				}
			}
			if s.pages[i].slot {
				slotBytes += m.cfg.PageSize
			}
		}
		if resident != s.resident || swapped != s.swapped {
			return fmt.Errorf("pid %d counters resident=%d/%d swapped=%d/%d",
				pid, s.resident, resident, s.swapped, swapped)
		}
		if resident != perOwner[pid] {
			return fmt.Errorf("pid %d resident pages %d but owns %d frames", pid, resident, perOwner[pid])
		}
	}
	if slotBytes != m.swapUsed {
		return fmt.Errorf("swap accounting: %d slot bytes vs %d counter", slotBytes, m.swapUsed)
	}
	return nil
}

package memory

// Micro-benchmarks for the two hot paths the run-based rewrite targets.
// Run with:
//
//	go test -bench 'BenchmarkTouch|BenchmarkReclaim' -benchmem ./internal/memory/
//
// BenchmarkTouch measures faulting a worst-case (2 GB) region in and
// re-touching it hot; BenchmarkReclaim measures the steady-state thrash
// cycle (two working sets contending for RAM) that dominates Figures 3/4.

import (
	"testing"
	"time"

	"hadooppreempt/internal/disk"
	"hadooppreempt/internal/sim"
)

func benchManager(b *testing.B) (*sim.Engine, *Manager) {
	b.Helper()
	eng := sim.New()
	d := disk.New(eng, "swap", disk.DefaultConfig())
	m, err := New(eng, d, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return eng, m
}

// BenchmarkTouchColdFault faults a 2 GB region into fresh frames — the
// paper's worst-case task allocation phase.
func BenchmarkTouchColdFault(b *testing.B) {
	const region = 2 << 30
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, m := benchManager(b)
		if _, err := m.Register(1, region); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Touch(1, 0, region, true); err != nil {
			b.Fatal(err)
		}
		m.Unregister(1)
		m.Release()
	}
}

// BenchmarkTouchHot re-touches a resident region (the rotating-buffer
// pattern of a running mapper): no faults, only referenced-bit upkeep.
func BenchmarkTouchHot(b *testing.B) {
	const region = 1 << 30
	_, m := benchManager(b)
	if _, err := m.Register(1, region); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Touch(1, 0, region, true); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%256) * (4 << 20)
		if _, err := m.Touch(1, off, 4<<20, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReclaim measures the suspend-and-flood cycle: a stopped 2 GB
// task is progressively evicted while a second task faults its own 2 GB
// in, then the first is resumed and read back — Figure 3's mechanism.
func BenchmarkReclaim(b *testing.B) {
	const region = 2 << 30
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng, m := benchManager(b)
		if _, err := m.Register(1, region); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Touch(1, 0, region, true); err != nil {
			b.Fatal(err)
		}
		m.MarkStopped(1)
		if _, err := m.Register(2, region); err != nil {
			b.Fatal(err)
		}
		// Chunked like the simulator's programs, so reclaim interleaves
		// with allocation exactly as in the figure runs.
		for off := int64(0); off < region; off += 8 << 20 {
			if _, err := m.Touch(2, off, 8<<20, true); err != nil {
				b.Fatal(err)
			}
		}
		m.Unregister(2)
		m.MarkRunning(1)
		eng.RunFor(time.Minute)
		if _, err := m.Touch(1, 0, region, false); err != nil {
			b.Fatal(err)
		}
		m.Unregister(1)
		m.Release()
	}
}

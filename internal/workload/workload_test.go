package workload

import (
	"testing"
	"time"

	"hadooppreempt/internal/mapreduce"
	"hadooppreempt/internal/scheduler"
	"hadooppreempt/internal/sim"
)

func TestGenerateCountAndOrder(t *testing.T) {
	specs, err := Generate(DefaultConfig(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 20 {
		t.Fatalf("specs = %d, want 20", len(specs))
	}
	for i := 1; i < len(specs); i++ {
		if specs[i].SubmitAt < specs[i-1].SubmitAt {
			t.Fatal("submissions must be time-ordered")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(DefaultConfig(), sim.NewRNG(7))
	b, _ := Generate(DefaultConfig(), sim.NewRNG(7))
	for i := range a {
		if a[i].SubmitAt != b[i].SubmitAt || a[i].InputBytes != b[i].InputBytes {
			t.Fatalf("spec %d diverged", i)
		}
	}
}

func TestGenerateRespectsMinSize(t *testing.T) {
	cfg := DefaultConfig()
	specs, _ := Generate(cfg, sim.NewRNG(3))
	for _, s := range specs {
		var class *JobClass
		for i := range cfg.Classes {
			if cfg.Classes[i].Name == s.Class {
				class = &cfg.Classes[i]
			}
		}
		if class == nil {
			t.Fatalf("unknown class %q", s.Class)
		}
		if s.InputBytes < class.MinInputBytes {
			t.Fatalf("job %s input %d below class floor %d", s.Conf.Name, s.InputBytes, class.MinInputBytes)
		}
	}
}

func TestGenerateMixesClasses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Count = 200
	specs, _ := Generate(cfg, sim.NewRNG(5))
	byClass := make(map[string]int)
	for _, s := range specs {
		byClass[s.Class]++
	}
	if byClass["interactive"] == 0 || byClass["batch"] == 0 {
		t.Fatalf("class mix degenerate: %v", byClass)
	}
	if byClass["interactive"] <= byClass["batch"] {
		t.Fatalf("interactive (%d) should dominate batch (%d) at 70/30 weights",
			byClass["interactive"], byClass["batch"])
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	bad := []Config{
		{Count: 0, MeanInterarrival: time.Second, Classes: DefaultConfig().Classes},
		{Count: 1, MeanInterarrival: 0, Classes: DefaultConfig().Classes},
		{Count: 1, MeanInterarrival: time.Second},
		{Count: 1, MeanInterarrival: time.Second, Classes: []JobClass{{Name: "x", Weight: -1, MapParseRate: 1}}},
		{Count: 1, MeanInterarrival: time.Second, Classes: []JobClass{{Name: "x", Weight: 1, MapParseRate: 0}}},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, rng); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestInstallRunsWorkload(t *testing.T) {
	ccfg := mapreduce.DefaultClusterConfig()
	ccfg.Nodes = 4
	ccfg.Node.MapSlots = 2
	ccfg.Node.Memory.PageSize = 1 << 20
	cluster, err := mapreduce.NewCluster(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster.JobTracker().SetScheduler(scheduler.NewFIFO(cluster.JobTracker()))

	cfg := Config{
		MeanInterarrival: 5 * time.Second,
		Count:            6,
		Classes: []JobClass{{
			Name: "small", Weight: 1,
			InputBytesMu: 17, InputBytesSigma: 0.3, MinInputBytes: 16 << 20,
			MapParseRate: 32e6,
		}},
	}
	specs, err := Generate(cfg, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	names, err := Install(cluster, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 6 {
		t.Fatalf("installed %d jobs, want 6", len(names))
	}
	// Jobs submit over virtual time; run until all done.
	cluster.RunUntil(time.Hour)
	jobs := cluster.JobTracker().Jobs()
	if len(jobs) != 6 {
		t.Fatalf("submitted %d jobs, want 6", len(jobs))
	}
	for _, j := range jobs {
		if j.State() != mapreduce.JobSucceeded {
			t.Fatalf("job %s state %v", j.ID(), j.State())
		}
	}
}

package workload

import (
	"bytes"
	"testing"
	"time"

	"hadooppreempt/internal/sweep"
)

// TestReplayTimeScaleCompressesSubmissions: -replay-timescale F divides
// submission times, job order and sizes untouched; 0 means no
// compression and negative factors are rejected.
func TestReplayTimeScaleCompressesSubmissions(t *testing.T) {
	jobs, err := ReadTraceFile(sampleTracePath)
	if err != nil {
		t.Fatal(err)
	}
	build := func(ts float64) *ReplayBackend {
		b, err := NewReplayBackend(ReplayConfig{Jobs: jobs, TimeScale: ts})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	plain := build(0).Specs(0)
	fast := build(4).Specs(0)
	if len(plain) != len(fast) || len(plain) == 0 {
		t.Fatalf("spec counts differ: %d vs %d", len(plain), len(fast))
	}
	for i := range plain {
		want := time.Duration(float64(plain[i].SubmitAt) / 4)
		if fast[i].SubmitAt != want {
			t.Fatalf("job %d submit %v at timescale 4, want %v (plain %v)",
				i, fast[i].SubmitAt, want, plain[i].SubmitAt)
		}
		if fast[i].InputBytes != plain[i].InputBytes || fast[i].Conf.Name != plain[i].Conf.Name {
			t.Fatalf("job %d: timescale changed more than submission time", i)
		}
	}
	if _, err := NewReplayBackend(ReplayConfig{Jobs: jobs, TimeScale: -1}); err == nil {
		t.Fatal("negative timescale accepted")
	}
}

// TestReplayTimeScaleDeterministic: a compressed replay is still
// byte-identical across parallelism levels — the knob must not leak
// execution order into results.
func TestReplayTimeScaleDeterministic(t *testing.T) {
	jobs, err := ReadTraceFile(sampleTracePath)
	if err != nil {
		t.Fatal(err)
	}
	render := func(parallel int) string {
		b, err := NewReplayBackend(ReplayConfig{Jobs: jobs, Shards: 2, TimeScale: 6, Scheduler: "hfsp"})
		if err != nil {
			t.Fatal(err)
		}
		col, err := sweep.RunBackend(b, sweep.Options{Parallel: parallel, Seed: 3}, sweep.RepAxis)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := col.WriteCSV(&out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	one := render(1)
	if one != render(4) {
		t.Fatal("timescaled replay differs across parallelism")
	}
	if len(one) == 0 {
		t.Fatal("empty replay output")
	}
}

// TestReplayFingerprintCoversContent: the backend content fingerprint
// must change when the trace or the replay configuration changes, so
// distributed workers with a different trace copy are rejected at join.
func TestReplayFingerprintCoversContent(t *testing.T) {
	jobs, err := ReadTraceFile(sampleTracePath)
	if err != nil {
		t.Fatal(err)
	}
	fp := func(cfg ReplayConfig) string {
		cfg.Jobs = append([]TraceJob(nil), cfg.Jobs...)
		b, err := NewReplayBackend(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return b.Fingerprint()
	}
	base := fp(ReplayConfig{Jobs: jobs})
	if base != fp(ReplayConfig{Jobs: jobs}) {
		t.Fatal("identical configs fingerprint differently")
	}
	mutated := append([]TraceJob(nil), jobs...)
	mutated[0].InputBytes++
	for name, other := range map[string]string{
		"trace bytes": fp(ReplayConfig{Jobs: mutated}),
		"timescale":   fp(ReplayConfig{Jobs: jobs, TimeScale: 2}),
		"scheduler":   fp(ReplayConfig{Jobs: jobs, Scheduler: "hfsp"}),
		"shards":      fp(ReplayConfig{Jobs: jobs, Shards: 2}),
	} {
		if other == base {
			t.Fatalf("fingerprint ignores %s", name)
		}
	}
}

// TestReplayWindowByteIdentical: the streaming input window is pure
// execution strategy — any window (including a degenerate 1-job one)
// must replay a synthesized trace byte-identically to the unbounded
// materialize-everything install, and must not enter the fingerprint
// (coordinator and workers may disagree on it freely).
func TestReplayWindowByteIdentical(t *testing.T) {
	jobs, err := SynthesizeTrace(120, 1)
	if err != nil {
		t.Fatal(err)
	}
	render := func(window int) string {
		b, err := NewReplayBackend(ReplayConfig{
			Jobs:      append([]TraceJob(nil), jobs...),
			Shards:    2,
			TimeScale: 8,
			Scheduler: "fair",
			Window:    window,
		})
		if err != nil {
			t.Fatal(err)
		}
		col, err := sweep.RunBackend(b, sweep.Options{Parallel: 2, Seed: 5}, sweep.RepAxis)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := col.WriteCSV(&out); err != nil {
			t.Fatal(err)
		}
		if err := col.WriteJSON(&out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	unbounded := render(0)
	if len(unbounded) == 0 {
		t.Fatal("empty replay output")
	}
	for _, w := range []int{1, 7, 64} {
		if render(w) != unbounded {
			t.Fatalf("window %d diverges from the unbounded install", w)
		}
	}
	fp := func(window int) string {
		b, err := NewReplayBackend(ReplayConfig{Jobs: append([]TraceJob(nil), jobs...), Window: window})
		if err != nil {
			t.Fatal(err)
		}
		return b.Fingerprint()
	}
	if fp(0) != fp(16) {
		t.Fatal("window leaked into the fingerprint")
	}
	if _, err := NewReplayBackend(ReplayConfig{Jobs: jobs, Window: -1}); err == nil {
		t.Fatal("negative window accepted")
	}
}

// TestSynthesizeTraceShape: the synthesized SWIM trace is deterministic
// in (n, seed), sorted by submission time with consistent inter-arrival
// gaps, and carries unique IDs — everything the replay backend and the
// distributed fingerprint check rely on.
func TestSynthesizeTraceShape(t *testing.T) {
	a, err := SynthesizeTrace(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SynthesizeTrace(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 300 {
		t.Fatalf("got %d jobs, want 300", len(a))
	}
	seen := make(map[string]bool)
	var prev time.Duration
	for i, j := range a {
		if j != b[i] {
			t.Fatalf("job %d differs between identical calls", i)
		}
		if seen[j.ID] {
			t.Fatalf("duplicate job id %q", j.ID)
		}
		seen[j.ID] = true
		if j.SubmitAt < prev {
			t.Fatalf("job %d submits at %v before predecessor %v", i, j.SubmitAt, prev)
		}
		if j.SubmitAt-prev != j.Interarrival {
			t.Fatalf("job %d interarrival %v, want %v", i, j.Interarrival, j.SubmitAt-prev)
		}
		if j.InputBytes <= 0 {
			t.Fatalf("job %d has input %d", i, j.InputBytes)
		}
		prev = j.SubmitAt
	}
	other, err := SynthesizeTrace(300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if other[0] == a[0] && other[1] == a[1] {
		t.Fatal("seed does not vary the trace")
	}
}

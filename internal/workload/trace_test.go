package workload

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"hadooppreempt/internal/sweep"
)

// sampleTracePath is the checked-in SWIM sample shared by the docs and
// the CI backend-parity job.
const sampleTracePath = "../../goldens/swim_sample.tsv"

// TestParseTraceGolden locks the parser against the checked-in sample:
// job count, field extraction and units.
func TestParseTraceGolden(t *testing.T) {
	jobs, err := ReadTraceFile(sampleTracePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 24 {
		t.Fatalf("parsed %d jobs, want 24", len(jobs))
	}
	golden := []struct {
		i      int
		id     string
		submit time.Duration
		gap    time.Duration
		input  int64
	}{
		{0, "job0000", 5 * time.Second, 5 * time.Second, 64 << 20},
		{1, "job0001", 12 * time.Second, 7 * time.Second, 32 << 20},
		{8, "job0008", 210 * time.Second, 60 * time.Second, 1 << 30},
		{12, "job0012", 420 * time.Second, 80 * time.Second, 2 << 30},
		{23, "job0023", 1260 * time.Second, 180 * time.Second, 256 << 20},
	}
	for _, g := range golden {
		j := jobs[g.i]
		if j.ID != g.id || j.SubmitAt != g.submit || j.Interarrival != g.gap || j.InputBytes != g.input {
			t.Errorf("job %d = %+v, want id=%s submit=%v gap=%v input=%d",
				g.i, j, g.id, g.submit, g.gap, g.input)
		}
	}
	// Shuffle and output columns are parsed too (job0012: 512 MB / 256 MB).
	if jobs[12].ShuffleBytes != 512<<20 || jobs[12].OutputBytes != 256<<20 {
		t.Errorf("job0012 shuffle/output = %d/%d, want %d/%d",
			jobs[12].ShuffleBytes, jobs[12].OutputBytes, int64(512<<20), int64(256<<20))
	}
}

// TestParseTraceRejectsBadInput covers the parser's error paths.
func TestParseTraceRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"too few fields":  "j1 0 0 100\n",
		"duplicate id":    "j1 0 0 100 0 0\nj1 5 5 100 0 0\n",
		"negative time":   "j1 -3 0 100 0 0\n",
		"bad byte count":  "j1 0 0 ten 0 0\n",
		"negative bytes":  "j1 0 0 -100 0 0\n",
		"empty trace":     "# only a comment\n",
		"non-number time": "j1 soon 0 100 0 0\n",
	}
	for name, in := range cases {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

// TestParseTraceSkipsCommentsAndBlanks accepts the documented cosmetics
// and fractional seconds.
func TestParseTraceSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nj1 0.5 0.5 100 0 0\n\n# tail\nj2 2 1.5 200 10 5 extra metadata\n"
	jobs, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("parsed %d jobs, want 2", len(jobs))
	}
	if jobs[0].SubmitAt != 500*time.Millisecond {
		t.Errorf("fractional submit = %v, want 500ms", jobs[0].SubmitAt)
	}
}

// TestReplayBackendSpecs checks round-robin shard assignment and the
// input floor/cap.
func TestReplayBackendSpecs(t *testing.T) {
	jobs := make([]TraceJob, 7)
	for i := range jobs {
		jobs[i] = TraceJob{ID: fmt.Sprintf("j%d", i), SubmitAt: time.Duration(i) * time.Second,
			InputBytes: int64(i) * 100 << 20}
	}
	b, err := NewReplayBackend(ReplayConfig{Jobs: jobs, Shards: 3, MaxInputBytes: 300 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s1 := b.Specs(1)
	if len(s1) != 2 || s1[0].Conf.Name != "j1" || s1[1].Conf.Name != "j4" {
		t.Fatalf("shard 1 = %+v, want j1, j4", s1)
	}
	s0 := b.Specs(0)
	if s0[0].InputBytes != 1<<20 {
		t.Errorf("small input not floored: %d", s0[0].InputBytes)
	}
	if s0[2].Conf.Name != "j6" || s0[2].InputBytes != 300<<20 {
		t.Errorf("large input not capped: %+v", s0[2])
	}
	if b.Specs(5) != nil || b.Specs(-1) != nil {
		t.Error("out-of-range shard should yield no specs")
	}
}

// TestReplayBackendValidation rejects broken configurations.
func TestReplayBackendValidation(t *testing.T) {
	if _, err := NewReplayBackend(ReplayConfig{}); err == nil {
		t.Error("empty trace should fail")
	}
	one := []TraceJob{{ID: "j", InputBytes: 1}}
	if _, err := NewReplayBackend(ReplayConfig{Jobs: one, Shards: 2}); err == nil {
		t.Error("more shards than jobs should fail")
	}
	if _, err := NewReplayBackend(ReplayConfig{Jobs: one, Scheduler: "random"}); err == nil {
		t.Error("unknown scheduler should fail")
	}
}

// replaySample builds a backend over the checked-in sample trace.
func replaySample(t *testing.T, sched string) *ReplayBackend {
	t.Helper()
	jobs, err := ReadTraceFile(sampleTracePath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewReplayBackend(ReplayConfig{Jobs: jobs, Shards: 4, Reps: 2, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestReplayDeterministicAcrossParallelAndShards is the backend's core
// guarantee: replay output is byte-identical at any parallelism, and
// process-shard files merge into the single-process result exactly.
func TestReplayDeterministicAcrossParallelAndShards(t *testing.T) {
	render := func(col *sweep.Collapsed) string {
		var out bytes.Buffer
		for _, format := range []string{"csv", "json", "table", "series"} {
			if err := col.Write(&out, format); err != nil {
				t.Fatal(err)
			}
		}
		return out.String()
	}
	b := replaySample(t, "fifo")
	p1, err := sweep.RunBackend(b, sweep.Options{Parallel: 1, Seed: 21}, sweep.RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := sweep.RunBackend(b, sweep.Options{Parallel: 8, Seed: 21}, sweep.RepAxis)
	if err != nil {
		t.Fatal(err)
	}
	if render(p1) != render(p8) {
		t.Fatal("replay output differs between -parallel 1 and -parallel 8")
	}
	const n = 3
	parts := make([]*sweep.Collapsed, n)
	for i := 0; i < n; i++ {
		col, err := sweep.RunBackend(b,
			sweep.Options{Parallel: 4, Seed: 21, Shard: sweep.Shard{Index: i, Count: n}}, sweep.RepAxis)
		if err != nil {
			t.Fatal(err)
		}
		var file bytes.Buffer
		if err := col.WriteShard(&file); err != nil {
			t.Fatal(err)
		}
		if parts[i], err = sweep.ReadShard(&file); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := sweep.Merge(parts[2], parts[0], parts[1])
	if err != nil {
		t.Fatal(err)
	}
	if render(merged) != render(p1) {
		t.Fatal("merged replay shards differ from the single-process run")
	}
}

// TestReplaySchedulers smoke-tests every scheduler wiring: all trace
// jobs complete and report positive sojourns.
func TestReplaySchedulers(t *testing.T) {
	for _, sched := range []string{"fifo", "fair", "hfsp"} {
		b := replaySample(t, sched)
		b.cfg.Reps = 1
		col, err := sweep.RunBackend(b, sweep.Options{Parallel: 4, Seed: 5}, sweep.RepAxis)
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if len(col.Groups) != 4 {
			t.Fatalf("%s: %d groups, want 4 trace shards", sched, len(col.Groups))
		}
		totalJobs := 0.0
		for _, g := range col.Groups {
			totalJobs += g.Metrics["jobs"].Mean
			if g.Metrics["sojourn_mean_s"].Mean <= 0 {
				t.Errorf("%s shard %s: non-positive mean sojourn", sched, g.Key)
			}
		}
		if totalJobs != 24 {
			t.Errorf("%s: replayed %v jobs across shards, want 24", sched, totalJobs)
		}
	}
}

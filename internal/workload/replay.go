package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"hadooppreempt/internal/advisor"
	"hadooppreempt/internal/core"
	"hadooppreempt/internal/mapreduce"
	"hadooppreempt/internal/metrics"
	"hadooppreempt/internal/scheduler"
	"hadooppreempt/internal/sweep"
)

// ReplayBackendName is the name the trace replayer reports to the sweep
// harness.
const ReplayBackendName = "replay"

// TraceShardAxis is the grid axis that picks one trace shard per cell.
const TraceShardAxis = "trace_shard"

// ReplayConfig configures a trace-replay backend.
type ReplayConfig struct {
	// Jobs is the parsed trace (see ParseTrace / ReadTraceFile).
	Jobs []TraceJob
	// Shards splits the trace into this many cells per repetition —
	// round-robin by trace position, so long traces spread across the
	// worker pool (and across processes via -shard). Default 1.
	Shards int
	// Reps repeats every trace shard with fresh cluster randomness.
	// Default 1.
	Reps int
	// Nodes and SlotsPerNode size each cell's simulated cluster
	// (defaults 2 and 2).
	Nodes        int
	SlotsPerNode int
	// Scheduler is the cluster scheduler: "fifo" (default), "fair" or
	// "hfsp". Fair and HFSP preempt with the suspend primitive and the
	// most-progress eviction policy, the paper's defaults.
	Scheduler string
	// MapParseRate is the synthetic mapper throughput applied to
	// replayed jobs (bytes/s; default 8e6, matching the SWIM-style
	// generator's classes).
	MapParseRate float64
	// MaxInputBytes caps a replayed job's input size (0 = no cap):
	// public traces contain multi-TB outliers that would swamp a
	// simulated cell.
	MaxInputBytes int64
	// TimeScale divides replayed submission times, compressing trace
	// inter-arrival gaps so day-long SWIM traces run in bounded sweep
	// cells (e.g. 24 turns a day of arrivals into an hour of virtual
	// time). It is a pure function of the trace, so replay output stays
	// deterministic across -parallel, -shard and distributed workers.
	// 0 means 1 (no compression); negative values are rejected.
	TimeScale float64
	// Deadline bounds each cell's virtual time (default 24h).
	Deadline time.Duration
	// Window bounds in-flight input materialization per cell: at most
	// this many jobs' HDFS inputs exist ahead of the submission
	// frontier (see InstallWindowed), so multi-thousand-job shards
	// stream instead of allocating every input up front. 0 means
	// unbounded. Output is byte-identical for any window, so it is
	// deliberately absent from Fingerprint: coordinator and workers
	// may disagree on it freely.
	Window int
}

// ReplayBackend replays a SWIM trace through simulated clusters: each
// grid cell materializes one trace shard as JobSpecs, boots an isolated
// cluster seeded from the cell's coordinate-derived seed, and runs the
// shard to completion. Because cells depend only on the parsed trace
// and their Point, replay output is identical at any parallelism and
// across process sharding, exactly like the simulator backend.
type ReplayBackend struct {
	cfg ReplayConfig
}

// NewReplayBackend validates the configuration and builds the backend.
func NewReplayBackend(cfg ReplayConfig) (*ReplayBackend, error) {
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("workload: replay needs a non-empty trace")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Shards > len(cfg.Jobs) {
		return nil, fmt.Errorf("workload: %d trace shards for %d jobs", cfg.Shards, len(cfg.Jobs))
	}
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	if cfg.Nodes < 1 {
		cfg.Nodes = 2
	}
	if cfg.SlotsPerNode < 1 {
		cfg.SlotsPerNode = 2
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = "fifo"
	}
	switch cfg.Scheduler {
	case "fifo", "fair", "hfsp":
	default:
		return nil, fmt.Errorf("workload: unknown replay scheduler %q (want fifo, fair or hfsp)", cfg.Scheduler)
	}
	if cfg.MapParseRate <= 0 {
		cfg.MapParseRate = 8e6
	}
	if cfg.TimeScale < 0 {
		return nil, fmt.Errorf("workload: negative replay time scale %g", cfg.TimeScale)
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 24 * time.Hour
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("workload: negative replay window %d", cfg.Window)
	}
	return &ReplayBackend{cfg: cfg}, nil
}

// Name implements sweep.Backend.
func (b *ReplayBackend) Name() string { return ReplayBackendName }

// Fingerprint returns a content signature of everything a replay cell's
// outcome depends on beyond the grid structure: the parsed trace and
// the replay configuration. The distributed coordinator compares it at
// join time, so a worker holding a different copy of the trace (or
// different replay flags) is rejected instead of silently breaking the
// merged sweep's byte-identity.
func (b *ReplayBackend) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "replay shards=%d reps=%d nodes=%d slots=%d sched=%s rate=%g cap=%d timescale=%g deadline=%d\n",
		b.cfg.Shards, b.cfg.Reps, b.cfg.Nodes, b.cfg.SlotsPerNode, b.cfg.Scheduler,
		b.cfg.MapParseRate, b.cfg.MaxInputBytes, b.cfg.TimeScale, int64(b.cfg.Deadline))
	for _, j := range b.cfg.Jobs {
		fmt.Fprintf(h, "%q %d %d %d %d %d\n", j.ID, int64(j.SubmitAt), int64(j.Interarrival),
			j.InputBytes, j.ShuffleBytes, j.OutputBytes)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Grid implements sweep.Backend: trace shard x repetition.
func (b *ReplayBackend) Grid() (sweep.Grid, error) {
	shards := make([]int, b.cfg.Shards)
	for i := range shards {
		shards[i] = i
	}
	return sweep.NewGrid(
		sweep.Ints(TraceShardAxis, shards...),
		sweep.Reps(b.cfg.Reps),
	), nil
}

// Specs materializes the trace shard owned by the given cell as
// ready-to-install job specifications.
func (b *ReplayBackend) Specs(shard int) []JobSpec {
	if shard < 0 || shard >= b.cfg.Shards {
		return nil
	}
	var specs []JobSpec
	for i := shard; i < len(b.cfg.Jobs); i += b.cfg.Shards {
		tj := b.cfg.Jobs[i]
		size := tj.InputBytes
		if b.cfg.MaxInputBytes > 0 && size > b.cfg.MaxInputBytes {
			size = b.cfg.MaxInputBytes
		}
		if size < 1<<20 {
			size = 1 << 20
		}
		at := tj.SubmitAt
		if b.cfg.TimeScale != 1 {
			at = time.Duration(float64(at) / b.cfg.TimeScale)
		}
		specs = append(specs, JobSpec{
			SubmitAt:   at,
			Class:      "trace",
			InputBytes: size,
			Conf: mapreduce.JobConf{
				Name:         tj.ID,
				InputPath:    "/replay/" + tj.ID,
				MapParseRate: b.cfg.MapParseRate,
			},
		})
	}
	return specs
}

// Cell implements sweep.Backend: it replays one trace shard through an
// isolated cluster and records the shard's sojourn statistics,
// preemption counts and swap traffic.
func (b *ReplayBackend) Cell(pt sweep.Point, rec *sweep.Recorder) error {
	specs := b.Specs(pt.Int(TraceShardAxis))
	ccfg := mapreduce.DefaultClusterConfig()
	ccfg.Nodes = b.cfg.Nodes
	ccfg.Node.MapSlots = b.cfg.SlotsPerNode
	ccfg.Seed = pt.Seed
	cluster, err := mapreduce.NewCluster(ccfg)
	if err != nil {
		return err
	}
	defer cluster.Close()
	if err := b.installScheduler(cluster); err != nil {
		return err
	}
	if _, err := InstallWindowed(cluster, specs, b.cfg.Window); err != nil {
		return err
	}
	if !cluster.RunUntilPlannedJobsDone(len(specs), b.cfg.Deadline) {
		return fmt.Errorf("workload: replay shard did not converge within %v", b.cfg.Deadline)
	}
	byName := make(map[string]*mapreduce.Job, len(specs))
	for _, j := range cluster.JobTracker().Jobs() {
		byName[j.Conf().Name] = j
	}
	var sojourns []float64
	var inputGB float64
	var suspensions, attempts int
	var swapOut, swapIn int64
	for _, spec := range specs {
		job, ok := byName[spec.Conf.Name]
		if !ok {
			return fmt.Errorf("workload: replayed job %s vanished", spec.Conf.Name)
		}
		sojourns = append(sojourns, (job.CompletedAt() - job.SubmittedAt()).Seconds())
		inputGB += float64(spec.InputBytes) / float64(1<<30)
		for _, t := range job.Tasks() {
			suspensions += t.Suspensions()
			attempts += t.Attempts()
			swapOut += t.SwapOutBytes()
			swapIn += t.SwapInBytes()
		}
	}
	s := metrics.Summarize(sojourns)
	rec.Observe("jobs", float64(len(specs)))
	rec.Observe("input_gb", inputGB)
	rec.Observe("sojourn_mean_s", s.Mean)
	rec.Observe("sojourn_p95_s", s.P95)
	rec.Observe("makespan_s", cluster.Engine().Now().Seconds())
	rec.Observe("suspensions", float64(suspensions))
	rec.Observe("attempts", float64(attempts))
	rec.Observe("swap_out_mb", float64(swapOut)/float64(1<<20))
	rec.Observe("swap_in_mb", float64(swapIn)/float64(1<<20))
	return nil
}

// installScheduler wires the configured scheduler into the cluster.
func (b *ReplayBackend) installScheduler(cluster *mapreduce.Cluster) error {
	jt := cluster.JobTracker()
	if b.cfg.Scheduler == "fifo" {
		jt.SetScheduler(scheduler.NewFIFO(jt))
		return nil
	}
	preemptor, err := core.NewPreemptor(cluster.Engine(), jt, core.Suspend, nil, core.CheckpointConfig{})
	if err != nil {
		return err
	}
	adv, err := advisor.New(advisor.Config{
		Policy: advisor.MostProgress, Primitive: core.Suspend,
	})
	if err != nil {
		return err
	}
	resident := func(id mapreduce.TaskID) int64 {
		if t, ok := jt.Task(id); ok {
			return t.ResidentBytes()
		}
		return 0
	}
	switch b.cfg.Scheduler {
	case "fair":
		fcfg := scheduler.DefaultFairConfig(b.cfg.Nodes * b.cfg.SlotsPerNode)
		fcfg.Resident = resident
		fair, err := scheduler.NewFair(cluster.Engine(), jt, preemptor, adv, fcfg)
		if err != nil {
			return err
		}
		jt.SetScheduler(fair)
	case "hfsp":
		hcfg := scheduler.DefaultHFSPConfig()
		hcfg.Resident = resident
		hfsp, err := scheduler.NewHFSP(cluster.Engine(), jt, preemptor, adv, hcfg)
		if err != nil {
			return err
		}
		jt.SetScheduler(hfsp)
	}
	return nil
}

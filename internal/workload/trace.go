package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"hadooppreempt/internal/sim"
)

// SWIM trace files (the Facebook workload samples published with Chen et
// al.'s Statistical Workload Injector for MapReduce) are line-oriented:
// one job per line with whitespace-separated fields
//
//	job_id  submit_time_s  inter_arrival_s  input_bytes  shuffle_bytes  output_bytes
//
// Times are seconds (fractions allowed), sizes are bytes. Blank lines
// and lines starting with '#' are ignored; extra trailing fields are
// tolerated (some trace variants append per-job metadata).

// TraceJob is one job of a parsed SWIM trace.
type TraceJob struct {
	// ID is the trace's job identifier (unique within a trace).
	ID string
	// SubmitAt is the job's absolute submission time.
	SubmitAt time.Duration
	// Interarrival is the gap to the previous submission, as recorded in
	// the trace.
	Interarrival time.Duration
	// InputBytes, ShuffleBytes and OutputBytes are the per-stage data
	// volumes. The map-only replayer drives work from InputBytes; the
	// shuffle and output columns are parsed for completeness.
	InputBytes   int64
	ShuffleBytes int64
	OutputBytes  int64
}

// ParseTrace reads a SWIM-format trace. Jobs are returned in file
// order; IDs must be unique and times and sizes non-negative.
func ParseTrace(r io.Reader) ([]TraceJob, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var jobs []TraceJob
	seen := make(map[string]bool)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 6 {
			return nil, fmt.Errorf("workload: trace line %d: %d fields, want at least 6", lineNo, len(fields))
		}
		id := fields[0]
		if seen[id] {
			return nil, fmt.Errorf("workload: trace line %d: duplicate job id %q", lineNo, id)
		}
		seen[id] = true
		submit, err := parseSeconds(fields[1])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: submit time: %w", lineNo, err)
		}
		gap, err := parseSeconds(fields[2])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: inter-arrival: %w", lineNo, err)
		}
		var sizes [3]int64
		for i := 0; i < 3; i++ {
			v, err := strconv.ParseInt(fields[3+i], 10, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("workload: trace line %d: bad byte count %q", lineNo, fields[3+i])
			}
			sizes[i] = v
		}
		jobs = append(jobs, TraceJob{
			ID:           id,
			SubmitAt:     submit,
			Interarrival: gap,
			InputBytes:   sizes[0],
			ShuffleBytes: sizes[1],
			OutputBytes:  sizes[2],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: trace: %w", err)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("workload: trace holds no jobs")
	}
	return jobs, nil
}

// ReadTraceFile parses the SWIM trace at the given path.
func ReadTraceFile(path string) ([]TraceJob, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	jobs, err := ParseTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return jobs, nil
}

// SynthesizeTrace generates an n-job SWIM-style trace from the
// Facebook-like default mix (DefaultConfig's classes and skew),
// deterministic for a given seed. It exists so benchmarks and smoke
// tests can exercise trace-scale replay without shipping a real trace
// file: the result round-trips through the replay backend exactly like
// a parsed trace, and two processes calling it with the same arguments
// hold byte-identical traces (so distributed workers pass the
// fingerprint check).
func SynthesizeTrace(n int, seed uint64) ([]TraceJob, error) {
	cfg := DefaultConfig()
	cfg.Count = n
	specs, err := Generate(cfg, sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	jobs := make([]TraceJob, len(specs))
	var prev time.Duration
	for i, s := range specs {
		jobs[i] = TraceJob{
			ID:           s.Conf.Name,
			SubmitAt:     s.SubmitAt,
			Interarrival: s.SubmitAt - prev,
			InputBytes:   s.InputBytes,
		}
		prev = s.SubmitAt
	}
	return jobs, nil
}

func parseSeconds(s string) (time.Duration, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad seconds value %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative seconds value %q", s)
	}
	return time.Duration(v * float64(time.Second)), nil
}

// Package workload generates synthetic MapReduce workloads in the style
// of SWIM (the workload suites of Chen et al., which the paper's §IV-A
// references as the methodology behind its synthetic jobs): job
// inter-arrival times and input sizes drawn from configurable
// distributions, with a mix of small interactive jobs and large batch
// jobs.
package workload

import (
	"fmt"
	"time"

	"hadooppreempt/internal/mapreduce"
	"hadooppreempt/internal/sim"
)

// JobClass describes one class of jobs in the mix (e.g. "interactive",
// "batch").
type JobClass struct {
	// Name labels jobs of this class.
	Name string
	// Weight is the relative frequency of the class.
	Weight float64
	// InputBytesMu and InputBytesSigma parameterize the log-normal input
	// size distribution.
	InputBytesMu    float64
	InputBytesSigma float64
	// MinInputBytes floors the sampled size.
	MinInputBytes int64
	// MapParseRate is the class's mapper throughput (bytes/s).
	MapParseRate float64
	// ExtraMemoryBytes is the per-task state allocation.
	ExtraMemoryBytes int64
	// Priority and Pool are passed through to the JobConf.
	Priority int
	Pool     string
}

// Config describes a workload.
type Config struct {
	// MeanInterarrival is the mean of the exponential inter-arrival
	// distribution.
	MeanInterarrival time.Duration
	// Classes is the job mix; weights need not sum to 1.
	Classes []JobClass
	// Count is the number of jobs to generate.
	Count int
}

// DefaultConfig returns a Facebook-like mix: mostly small interactive
// jobs with a tail of large batch jobs (the skew SWIM reports).
func DefaultConfig() Config {
	return Config{
		MeanInterarrival: 30 * time.Second,
		Count:            20,
		Classes: []JobClass{
			{
				Name:            "interactive",
				Weight:          0.7,
				InputBytesMu:    18.5, // ~108 MB median
				InputBytesSigma: 0.7,
				MinInputBytes:   16 << 20,
				MapParseRate:    8e6,
			},
			{
				Name:            "batch",
				Weight:          0.3,
				InputBytesMu:    20.5, // ~800 MB median
				InputBytesSigma: 0.5,
				MinInputBytes:   256 << 20,
				MapParseRate:    8e6,
			},
		},
	}
}

// JobSpec is one generated job.
type JobSpec struct {
	// SubmitAt is the absolute submission time.
	SubmitAt time.Duration
	// Class is the class name the job was drawn from.
	Class string
	// Conf is ready for JobTracker.Submit once InputPath exists.
	Conf mapreduce.JobConf
	// InputBytes is the sampled input size.
	InputBytes int64
}

// Generate samples a workload trace. It is deterministic for a given rng
// state.
func Generate(cfg Config, rng *sim.RNG) ([]JobSpec, error) {
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("workload: count must be positive")
	}
	if cfg.MeanInterarrival <= 0 {
		return nil, fmt.Errorf("workload: mean interarrival must be positive")
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("workload: need at least one class")
	}
	totalWeight := 0.0
	for _, c := range cfg.Classes {
		if c.Weight < 0 {
			return nil, fmt.Errorf("workload: class %s has negative weight", c.Name)
		}
		if c.MapParseRate <= 0 {
			return nil, fmt.Errorf("workload: class %s needs a positive parse rate", c.Name)
		}
		totalWeight += c.Weight
	}
	if totalWeight <= 0 {
		return nil, fmt.Errorf("workload: total class weight must be positive")
	}
	var specs []JobSpec
	var clock time.Duration
	for i := 0; i < cfg.Count; i++ {
		gap := time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		clock += gap
		class := pickClass(cfg.Classes, totalWeight, rng)
		size := int64(rng.LogNormal(class.InputBytesMu, class.InputBytesSigma))
		if size < class.MinInputBytes {
			size = class.MinInputBytes
		}
		name := fmt.Sprintf("%s-%03d", class.Name, i)
		specs = append(specs, JobSpec{
			SubmitAt:   clock,
			Class:      class.Name,
			InputBytes: size,
			Conf: mapreduce.JobConf{
				Name:             name,
				InputPath:        "/workload/" + name,
				Priority:         class.Priority,
				Pool:             class.Pool,
				MapParseRate:     class.MapParseRate,
				ExtraMemoryBytes: class.ExtraMemoryBytes,
			},
		})
	}
	return specs, nil
}

// pickClass samples a class proportionally to weight.
func pickClass(classes []JobClass, total float64, rng *sim.RNG) *JobClass {
	x := rng.Float64() * total
	for i := range classes {
		x -= classes[i].Weight
		if x <= 0 {
			return &classes[i]
		}
	}
	return &classes[len(classes)-1]
}

// Install creates the input files and schedules the submissions on the
// cluster. It returns the submitted jobs' names in order; the jobs
// themselves materialize as virtual time advances.
func Install(cluster *mapreduce.Cluster, specs []JobSpec) ([]string, error) {
	names := make([]string, 0, len(specs))
	for i := range specs {
		spec := specs[i]
		if err := cluster.CreateInput(spec.Conf.InputPath, spec.InputBytes); err != nil {
			return nil, fmt.Errorf("workload: input for %s: %w", spec.Conf.Name, err)
		}
		cluster.Engine().At(spec.SubmitAt, func() {
			if _, err := cluster.JobTracker().Submit(spec.Conf); err != nil {
				panic(fmt.Sprintf("workload: submit %s: %v", spec.Conf.Name, err))
			}
		})
		names = append(names, spec.Conf.Name)
	}
	return names, nil
}

// InstallWindowed is Install with bounded input materialization: at most
// window inputs exist ahead of the submission frontier, so a
// multi-thousand-job trace no longer allocates every HDFS file up
// front. Submissions are still all scheduled at install time — engine
// event ordering is exactly Install's — and inputs are created in spec
// order (HDFS placement draws from a private RNG consumed only at
// creation, so deferring creation to any point before the first read
// leaves block IDs and replica placement unchanged). Output is
// therefore byte-identical to Install for any window.
//
// Windowing requires specs sorted by SubmitAt (the submission frontier
// is what pulls the next input into existence); unsorted specs fall
// back to the unbounded path. window <= 0 also means unbounded.
func InstallWindowed(cluster *mapreduce.Cluster, specs []JobSpec, window int) ([]string, error) {
	if window <= 0 || window >= len(specs) || !sortedBySubmit(specs) {
		return Install(cluster, specs)
	}
	create := func(i int) error {
		if err := cluster.CreateInput(specs[i].Conf.InputPath, specs[i].InputBytes); err != nil {
			return fmt.Errorf("workload: input for %s: %w", specs[i].Conf.Name, err)
		}
		return nil
	}
	for i := 0; i < window; i++ {
		if err := create(i); err != nil {
			return nil, err
		}
	}
	names := make([]string, 0, len(specs))
	for i := range specs {
		i := i
		spec := specs[i]
		cluster.Engine().At(spec.SubmitAt, func() {
			// Submissions fire in spec order (nondecreasing times, FIFO
			// at ties), so creating spec i+window here keeps global
			// creation order and guarantees every input exists before
			// its own submission.
			if i+window < len(specs) {
				if err := create(i + window); err != nil {
					panic(err.Error())
				}
			}
			if _, err := cluster.JobTracker().Submit(spec.Conf); err != nil {
				panic(fmt.Sprintf("workload: submit %s: %v", spec.Conf.Name, err))
			}
		})
		names = append(names, spec.Conf.Name)
	}
	return names, nil
}

// sortedBySubmit reports whether specs are in nondecreasing submission
// order.
func sortedBySubmit(specs []JobSpec) bool {
	for i := 1; i < len(specs); i++ {
		if specs[i].SubmitAt < specs[i-1].SubmitAt {
			return false
		}
	}
	return true
}

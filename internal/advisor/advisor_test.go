package advisor_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hadooppreempt/internal/advisor"
	"hadooppreempt/internal/core"
	"hadooppreempt/internal/sim"
)

var allPolicies = []advisor.Policy{
	advisor.MostProgress, advisor.LeastProgress,
	advisor.SmallestMemory, advisor.LargestMemory,
	advisor.Oldest, advisor.Youngest,
}

// randomCandidates draws n candidates with deliberately colliding keys
// (few distinct progress/memory/start values, duplicated IDs on
// distinct indices) so the differential test exercises the tie-break
// path, not just the obvious orderings.
func randomCandidates(rng *sim.RNG, n int) []advisor.Candidate {
	cs := make([]advisor.Candidate, n)
	for i := range cs {
		cs[i] = advisor.Candidate{
			ID:            fmt.Sprintf("job%d_m_%06d", rng.Intn(4), rng.Intn(8)),
			Progress:      float64(rng.Intn(5)) / 4,
			ResidentBytes: int64(rng.Intn(4)) << 27,
			StartedAt:     time.Duration(rng.Intn(6)) * time.Second,
		}
	}
	return cs
}

// TestDecideMatchesCorePolicies is the golden-compat proof: on
// randomized candidate sets, Decide's victim is byte-for-byte the one
// the reference core.EvictionPolicy picks, and with the default
// thresholds its primitive is core.DefaultAdvisor().Choose's verdict.
// This is what licenses rewiring the simulators through the advisor
// without touching the committed goldens.
func TestDecideMatchesCorePolicies(t *testing.T) {
	rng := sim.NewRNG(7)
	for _, p := range allPolicies {
		ref, err := core.PolicyByName(p.String())
		if err != nil {
			t.Fatalf("core.PolicyByName(%q): %v", p, err)
		}
		adv, err := advisor.New(advisor.Config{
			Policy: p, KillBelow: 0.05, WaitAbove: 0.95,
		})
		if err != nil {
			t.Fatalf("New(%v): %v", p, err)
		}
		coreAdv := core.DefaultAdvisor()
		for trial := 0; trial < 500; trial++ {
			cs := randomCandidates(rng, 1+rng.Intn(12))
			d := adv.Decide(advisor.Request{Candidates: cs})
			want, ok := ref.SelectVictim(cs)
			if !ok {
				t.Fatalf("%v: reference rejected a non-empty set", p)
			}
			if d.Victim < 0 || d.Victim >= len(cs) || cs[d.Victim] != want {
				t.Fatalf("%v trial %d: Decide picked %+v (index %d), core picked %+v\ncandidates: %+v",
					p, trial, cs[d.Victim], d.Victim, want, cs)
			}
			if got, wantP := d.Primitive, coreAdv.Choose(want.Progress); got != wantP {
				t.Fatalf("%v trial %d: Decide primitive %v, core.Advisor.Choose(%v) = %v",
					p, trial, got, want.Progress, wantP)
			}
			if d.Pressured {
				t.Fatalf("%v trial %d: Pressured set with the override disabled", p, trial)
			}
		}
	}
}

// TestDecideEmptyAndSingle covers the edges of the candidate set.
func TestDecideEmptyAndSingle(t *testing.T) {
	adv, err := advisor.New(advisor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d := adv.Decide(advisor.Request{}); d.Victim != advisor.NoVictim {
		t.Fatalf("empty set: Victim = %d, want NoVictim", d.Victim)
	}
	one := []advisor.Candidate{{ID: "job1_m_000000", Progress: 0.5}}
	if d := adv.Decide(advisor.Request{Candidates: one}); d.Victim != 0 || d.Primitive != core.Suspend {
		t.Fatalf("single candidate: got %+v, want victim 0 / suspend", d)
	}
}

// TestDecideForcedPrimitive checks the scheduler-style configuration:
// every verdict is the wired preemptor's primitive.
func TestDecideForcedPrimitive(t *testing.T) {
	for _, prim := range []core.Primitive{core.Wait, core.Kill, core.Suspend, core.Checkpoint} {
		adv, err := advisor.New(advisor.Config{Policy: advisor.SmallestMemory, Primitive: prim})
		if err != nil {
			t.Fatalf("New(forced %v): %v", prim, err)
		}
		cs := []advisor.Candidate{
			{ID: "job1_m_000000", Progress: 0.01, ResidentBytes: 2 << 30},
			{ID: "job2_m_000000", Progress: 0.99, ResidentBytes: 1 << 30},
		}
		d := adv.Decide(advisor.Request{Candidates: cs})
		if d.Victim != 1 {
			t.Fatalf("forced %v: victim %d, want 1 (smallest memory)", prim, d.Victim)
		}
		if d.Primitive != prim {
			t.Fatalf("forced %v: primitive %v", prim, d.Primitive)
		}
	}
}

// TestDecidePressureOverride checks the memory-pressure conversion:
// a suspend verdict becomes kill exactly when the victim won't fit in
// free memory AND its progress is under the pressure threshold.
func TestDecidePressureOverride(t *testing.T) {
	adv, err := advisor.New(advisor.Config{
		Policy: advisor.LargestMemory, KillBelow: 0.05, WaitAbove: 0.95,
		PressureKillBelow: 0.30,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(progress float64, resident int64) []advisor.Candidate {
		return []advisor.Candidate{{ID: "job1_m_000000", Progress: progress, ResidentBytes: resident}}
	}
	cases := []struct {
		name      string
		progress  float64
		free      int64
		wantPrim  core.Primitive
		pressured bool
	}{
		{"young, doesn't fit: converted", 0.10, 1 << 28, core.Kill, true},
		{"young, fits: suspend stands", 0.10, 1 << 31, core.Suspend, false},
		{"mid-progress, doesn't fit: too much to redo", 0.50, 1 << 28, core.Suspend, false},
		{"below KillBelow: plain kill, not pressure", 0.01, 1 << 28, core.Kill, false},
		{"above WaitAbove: wait, never converted", 0.99, 1 << 28, core.Wait, false},
	}
	for _, tc := range cases {
		d := adv.Decide(advisor.Request{Candidates: mk(tc.progress, 1<<30), FreeBytes: tc.free})
		if d.Primitive != tc.wantPrim || d.Pressured != tc.pressured {
			t.Errorf("%s: got %v pressured=%v, want %v pressured=%v",
				tc.name, d.Primitive, d.Pressured, tc.wantPrim, tc.pressured)
		}
	}
}

// TestDecideZeroAlloc is the satellite regression test: a decision
// over a reused scratch slice performs zero heap allocations, for
// every policy and both cost models.
func TestDecideZeroAlloc(t *testing.T) {
	rng := sim.NewRNG(11)
	scratch := randomCandidates(rng, 16)
	configs := []advisor.Config{
		advisor.DefaultConfig(),
		{Policy: advisor.SmallestMemory, Primitive: core.Suspend},
		{Policy: advisor.LargestMemory, KillBelow: 0.05, WaitAbove: 0.95, PressureKillBelow: 0.3},
	}
	for _, p := range allPolicies {
		configs = append(configs, advisor.Config{Policy: p, KillBelow: 0.05, WaitAbove: 0.95})
	}
	for _, cfg := range configs {
		adv, err := advisor.New(cfg)
		if err != nil {
			t.Fatalf("New(%+v): %v", cfg, err)
		}
		req := advisor.Request{Candidates: scratch, FreeBytes: 1 << 28}
		var sink advisor.Decision
		allocs := testing.AllocsPerRun(200, func() {
			sink = adv.Decide(req)
		})
		if allocs != 0 {
			t.Errorf("config %+v: %v allocs/decision, want 0", cfg, allocs)
		}
		_ = sink
	}
}

// TestDecideConcurrent shares one Advisor across goroutines (each with
// its own scratch slice, as the API requires) under the race detector.
func TestDecideConcurrent(t *testing.T) {
	adv, err := advisor.New(advisor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref := core.MostProgress()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := sim.NewRNG(seed)
			scratch := randomCandidates(rng, 8)
			for i := 0; i < 2000; i++ {
				// Mutate the caller-owned scratch between calls, as a
				// scheduler refreshing progress values would.
				j := rng.Intn(len(scratch))
				scratch[j].Progress = float64(rng.Intn(5)) / 4
				d := adv.Decide(advisor.Request{Candidates: scratch})
				want, _ := ref.SelectVictim(scratch)
				if scratch[d.Victim] != want {
					t.Errorf("goroutine %d iter %d: victim mismatch", seed, i)
					return
				}
			}
		}(uint64(g) + 1)
	}
	wg.Wait()
}

// TestNewValidation pins the config contract.
func TestNewValidation(t *testing.T) {
	bad := []advisor.Config{
		{},                          // no policy
		{Policy: advisor.Policy(7)}, // out of range
		{Policy: advisor.MostProgress, Primitive: core.Primitive(9)},
		{Policy: advisor.MostProgress, KillBelow: 0.9, WaitAbove: 0.1}, // inverted
		{Policy: advisor.MostProgress, KillBelow: -0.1, WaitAbove: 0.95},
		{Policy: advisor.MostProgress, KillBelow: 0.05, WaitAbove: 1.5},
		{Policy: advisor.MostProgress, KillBelow: 0.05, WaitAbove: 0.95, PressureKillBelow: 2},
		{Policy: advisor.MostProgress, Primitive: core.Kill, PressureKillBelow: 0.3}, // override needs thresholds
	}
	for _, cfg := range bad {
		if a, err := advisor.New(cfg); err == nil || a.Valid() {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
	if a, err := advisor.New(advisor.DefaultConfig()); err != nil || !a.Valid() {
		t.Errorf("New(DefaultConfig()) = %v, %v", a.Valid(), err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Decide on a zero Advisor did not panic")
		}
	}()
	var zero advisor.Advisor
	zero.Decide(advisor.Request{Candidates: []advisor.Candidate{{ID: "x"}}})
}

// TestPolicyNamesRoundTrip keeps the label set in lockstep with core's.
func TestPolicyNamesRoundTrip(t *testing.T) {
	for _, p := range allPolicies {
		got, err := advisor.PolicyByName(p.String())
		if err != nil || got != p {
			t.Errorf("PolicyByName(%q) = %v, %v", p.String(), got, err)
		}
		if _, err := core.PolicyByName(p.String()); err != nil {
			t.Errorf("core does not know label %q", p.String())
		}
	}
	if _, err := advisor.PolicyByName("round-robin"); err == nil {
		t.Error("PolicyByName accepted an unknown label")
	}
}

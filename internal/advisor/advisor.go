// Package advisor is the serving-path form of the paper's §V-A
// preemption cost model: one allocation-free call that answers both
// questions a scheduler asks at every preemption decision — which task
// to evict (the victim-selection policies of core.EvictionPolicy) and
// which primitive to evict it with (kill freshly started tasks, wait
// for nearly-done ones, suspend the rest), optionally modulated by
// memory pressure.
//
// The package exists so the exact code path a simulated scheduler runs
// is the one the benchmarks measure. It is engineered for a scheduler's
// hot path:
//
//   - Request and Decision are value types; Decide performs zero heap
//     allocations (enforced by a testing.AllocsPerRun regression test).
//   - The candidate slice is caller-owned scratch: Decide never retains,
//     mutates or copies it, so callers reuse one buffer across millions
//     of decisions.
//   - Advisor is an immutable value after New: no locks, no maps, safe
//     to share across any number of concurrent goroutines.
//
// The semantics are bit-compatible with the reference implementation in
// internal/core: for every policy, Decide picks the candidate
// core.EvictionPolicy.SelectVictim would pick (including the
// deterministic ID tie-break), and with threshold configuration it
// chooses the primitive core.Advisor.Choose would choose. A
// differential test over randomized candidate sets pins this, which is
// what keeps the simulation goldens byte-identical after the rewire.
package advisor

import (
	"fmt"

	"hadooppreempt/internal/core"
)

// Candidate describes one preemptable task. It is an alias of the
// reference type so callers, the simulators and the differential tests
// all share one scratch representation.
type Candidate = core.Candidate

// Policy selects the victim-ordering rule. The kinds mirror the
// core.EvictionPolicy constructors one to one; being an enum rather
// than an interface keeps Decide free of dynamic dispatch and heap
// traffic.
type Policy uint8

// Victim-selection policies (§V-A's design space).
const (
	// MostProgress prefers the task closest to completion (Natjam's
	// SRT-style policy).
	MostProgress Policy = iota + 1
	// LeastProgress prefers the freshest task (least work wasted under
	// kill).
	LeastProgress
	// SmallestMemory prefers the smallest resident set, minimizing
	// paging under suspend — the strategy §V-A derives from Figure 4.
	SmallestMemory
	// LargestMemory prefers the largest resident set (frees the most
	// memory; worst case for suspend overhead).
	LargestMemory
	// Oldest prefers the longest-running task.
	Oldest
	// Youngest prefers the most recently started task.
	Youngest
)

// String returns the policy's report label (same labels as
// core.EvictionPolicy.Name).
func (p Policy) String() string {
	switch p {
	case MostProgress:
		return "most-progress"
	case LeastProgress:
		return "least-progress"
	case SmallestMemory:
		return "smallest-memory"
	case LargestMemory:
		return "largest-memory"
	case Oldest:
		return "oldest"
	case Youngest:
		return "youngest"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// PolicyByName resolves a policy label (the same labels
// core.PolicyByName accepts).
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "most-progress":
		return MostProgress, nil
	case "least-progress":
		return LeastProgress, nil
	case "smallest-memory":
		return SmallestMemory, nil
	case "largest-memory":
		return LargestMemory, nil
	case "oldest":
		return Oldest, nil
	case "youngest":
		return Youngest, nil
	default:
		return 0, fmt.Errorf("advisor: unknown eviction policy %q", name)
	}
}

// Config parameterizes an Advisor. It is copied at New time; the
// Advisor never observes later mutations.
type Config struct {
	// Policy is the victim-selection rule (required).
	Policy Policy

	// Primitive, when nonzero, forces every verdict to this primitive —
	// the configuration of a scheduler wired to a single-primitive
	// Preemptor (the fixed-primitive comparisons of §IV). When zero, the
	// §V-A cost model below picks the primitive per victim.
	Primitive core.Primitive

	// KillBelow kills victims with progress < KillBelow (little work
	// lost). Used only when Primitive is zero.
	KillBelow float64
	// WaitAbove waits for victims with progress > WaitAbove (they are
	// about to free the slot anyway). Used only when Primitive is zero.
	WaitAbove float64

	// PressureKillBelow enables the memory-pressure override: when the
	// chosen victim's resident bytes exceed Request.FreeBytes (suspending
	// it would force paging) and its progress is below this threshold, a
	// suspend verdict converts to kill — redoing that little work is
	// cheaper than swapping the task's state out and back in. Zero
	// disables the override; it never fires on forced-primitive
	// configurations.
	PressureKillBelow float64
}

// DefaultConfig returns the paper's qualitative thresholds (the same
// ones core.DefaultAdvisor uses) with the most-progress policy and no
// pressure override.
func DefaultConfig() Config {
	return Config{Policy: MostProgress, KillBelow: 0.05, WaitAbove: 0.95}
}

// Advisor is an immutable decision maker. The zero value is not valid;
// build one with New. Advisors are small values — copy them freely and
// share them across goroutines without synchronization.
type Advisor struct {
	cfg Config
	ok  bool
}

// New validates the configuration and returns an immutable Advisor.
func New(cfg Config) (Advisor, error) {
	if cfg.Policy < MostProgress || cfg.Policy > Youngest {
		return Advisor{}, fmt.Errorf("advisor: invalid policy %v", cfg.Policy)
	}
	if cfg.Primitive != 0 {
		switch cfg.Primitive {
		case core.Wait, core.Kill, core.Suspend, core.Checkpoint:
		default:
			return Advisor{}, fmt.Errorf("advisor: invalid primitive %v", cfg.Primitive)
		}
		if cfg.PressureKillBelow != 0 {
			return Advisor{}, fmt.Errorf("advisor: pressure override needs the threshold cost model, not a forced primitive")
		}
	} else {
		if cfg.KillBelow < 0 || cfg.WaitAbove > 1 || cfg.KillBelow > cfg.WaitAbove {
			return Advisor{}, fmt.Errorf("advisor: thresholds must satisfy 0 <= KillBelow <= WaitAbove <= 1 (got %v, %v)",
				cfg.KillBelow, cfg.WaitAbove)
		}
		if cfg.PressureKillBelow < 0 || cfg.PressureKillBelow > 1 {
			return Advisor{}, fmt.Errorf("advisor: PressureKillBelow must be in [0,1] (got %v)", cfg.PressureKillBelow)
		}
	}
	return Advisor{cfg: cfg, ok: true}, nil
}

// Valid reports whether the advisor was built by New.
func (a Advisor) Valid() bool { return a.ok }

// Config returns the advisor's (immutable) configuration.
func (a Advisor) Config() Config { return a.cfg }

// Request is one preemption decision's input. It is a value type; the
// candidate slice is caller-owned scratch that Decide never retains.
type Request struct {
	// Candidates are the preemptable tasks. Decide reads the slice and
	// never mutates or keeps it, so callers reuse one buffer across
	// decisions.
	Candidates []Candidate
	// FreeBytes is the node's free memory, consulted only by the
	// pressure override (Config.PressureKillBelow): a victim whose
	// resident bytes exceed it would have to page to be suspended.
	FreeBytes int64
}

// NoVictim is the Decision.Victim value when the candidate set is
// empty.
const NoVictim = -1

// Decision is one preemption decision's output, a value type.
type Decision struct {
	// Victim indexes Request.Candidates, or NoVictim when the set was
	// empty. Index-based identification keeps the response
	// allocation-free; callers hold the parallel task handles.
	Victim int
	// Primitive is how to evict the victim: the forced primitive, or the
	// §V-A cost-model verdict (Kill young, Wait for nearly-done, Suspend
	// the middle, possibly converted by the pressure override).
	Primitive core.Primitive
	// Pressured reports that the memory-pressure override converted a
	// suspend verdict to kill.
	Pressured bool
}

// Decide picks the victim and the primitive for one preemption
// decision. It performs no heap allocations and may be called
// concurrently on a shared Advisor.
func (a Advisor) Decide(req Request) Decision {
	if !a.ok {
		panic("advisor: Decide on a zero Advisor (use New)")
	}
	cs := req.Candidates
	if len(cs) == 0 {
		return Decision{Victim: NoVictim}
	}
	victim := 0
	for i := 1; i < len(cs); i++ {
		if a.better(&cs[i], &cs[victim]) ||
			(!a.better(&cs[victim], &cs[i]) && cs[i].ID < cs[victim].ID) {
			victim = i
		}
	}
	d := Decision{Victim: victim}
	if a.cfg.Primitive != 0 {
		d.Primitive = a.cfg.Primitive
		return d
	}
	switch progress := cs[victim].Progress; {
	case progress < a.cfg.KillBelow:
		d.Primitive = core.Kill
	case progress > a.cfg.WaitAbove:
		d.Primitive = core.Wait
	default:
		d.Primitive = core.Suspend
		if a.cfg.PressureKillBelow > 0 &&
			cs[victim].ResidentBytes > req.FreeBytes &&
			progress < a.cfg.PressureKillBelow {
			d.Primitive = core.Kill
			d.Pressured = true
		}
	}
	return d
}

// better reports whether x is preferred over y under the configured
// policy — the same orderings the core.EvictionPolicy constructors
// implement. Pointer receivers on the candidates avoid copying the
// (string-bearing) struct per comparison.
func (a Advisor) better(x, y *Candidate) bool {
	switch a.cfg.Policy {
	case MostProgress:
		return x.Progress > y.Progress
	case LeastProgress:
		return x.Progress < y.Progress
	case SmallestMemory:
		return x.ResidentBytes < y.ResidentBytes
	case LargestMemory:
		return x.ResidentBytes > y.ResidentBytes
	case Oldest:
		return x.StartedAt < y.StartedAt
	default: // Youngest; New admits no other value
		return x.StartedAt > y.StartedAt
	}
}
